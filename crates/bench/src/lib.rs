//! Shared harness utilities for the table/figure regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper;
//! this library holds the common pieces: wall-clock timing, the epsilon
//! sweeps the paper uses, and plain-text table rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emit;

use std::time::Instant;

/// The epsilon sweep used by the paper's Tables 2 and 3:
/// `inf, 1.5, 1.0, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0`.
pub const TABLE_EPS: [f64; 9] = [f64::INFINITY, 1.5, 1.0, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0];

/// The epsilon sweep used by the paper's Table 4 (random nets):
/// `0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 1.0`.
pub const TABLE4_EPS: [f64; 7] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 1.0];

/// The net sizes (sink counts) of the paper's random benchmark set (4).
pub const RANDOM_NET_SIZES: [usize; 5] = [5, 8, 10, 12, 15];

/// Number of random cases per net size (the paper uses 50).
pub const RANDOM_CASES: usize = 50;

/// Base seed for the random suite, offset per net size so suites don't
/// overlap.
pub fn suite_seed(num_sinks: usize) -> u64 {
    0x5EED_0000 + (num_sinks as u64) * 1_000
}

/// Runs `f`, returning its result and the elapsed wall-clock seconds.
///
/// The paper reports HP-PA/SUN CPU seconds; we report wall-clock on the
/// reproduction machine — only *relative* times are comparable.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Formats an epsilon the way the paper's tables print it (`inf` for the
/// unbounded row).
pub fn fmt_eps(eps: f64) -> String {
    if eps.is_infinite() {
        "inf".to_owned()
    } else {
        format!("{eps:.1}")
    }
}

/// Returns `true` when the process arguments contain `flag`
/// (e.g. `--full`).
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Least-squares slope of `ln(time)` against `ln(n)` — the empirical
/// scaling exponent of a `(n, time)` sweep (`~2.0` for quadratic, `~1.0`
/// for linear). Time units cancel out; only ratios matter.
///
/// Returns `None` when fewer than two *distinct* positive sizes remain
/// after dropping non-positive points (log of zero is undefined; a
/// zero-micros measurement means the clock under-resolved, not that the
/// algorithm is free).
pub fn fit_scaling_exponent(points: &[(f64, f64)]) -> Option<f64> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(n, t)| *n > 0.0 && *t > 0.0)
        .map(|(n, t)| (n.ln(), t.ln()))
        .collect();
    let k = logs.len() as f64;
    let distinct = {
        let mut xs: Vec<u64> = logs.iter().map(|(x, _)| x.to_bits()).collect();
        xs.sort_unstable();
        xs.dedup();
        xs.len()
    };
    if distinct < 2 {
        return None;
    }
    let mean_x = logs.iter().map(|(x, _)| x).sum::<f64>() / k;
    let mean_y = logs.iter().map(|(_, y)| y).sum::<f64>() / k;
    let sxy: f64 = logs.iter().map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    (sxx > 0.0).then(|| sxy / sxx)
}

/// Simple aggregate of a sample: average, maximum, minimum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Arithmetic mean.
    pub ave: f64,
    /// Maximum.
    pub max: f64,
    /// Minimum.
    pub min: f64,
}

impl Aggregate {
    /// Computes the aggregate of a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn of(samples: &[f64]) -> Aggregate {
        assert!(!samples.is_empty(), "aggregate of an empty sample");
        let ave = samples.iter().sum::<f64>() / samples.len() as f64;
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        Aggregate { ave, max, min }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn aggregate_of_sample() {
        let a = Aggregate::of(&[1.0, 3.0, 2.0]);
        assert_eq!(a.ave, 2.0);
        assert_eq!(a.max, 3.0);
        assert_eq!(a.min, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn aggregate_empty_panics() {
        Aggregate::of(&[]);
    }

    #[test]
    fn eps_formatting() {
        assert_eq!(fmt_eps(f64::INFINITY), "inf");
        assert_eq!(fmt_eps(0.5), "0.5");
        assert_eq!(fmt_eps(0.0), "0.0");
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn exponent_fit_recovers_power_laws() {
        // Exact quadratic: t = 3 n^2.
        let quad: Vec<(f64, f64)> = [10.0, 100.0, 1000.0]
            .iter()
            .map(|&n: &f64| (n, 3.0 * n * n))
            .collect();
        assert!((fit_scaling_exponent(&quad).unwrap() - 2.0).abs() < 1e-9);
        // Exact linear.
        let lin: Vec<(f64, f64)> = [32.0, 64.0, 128.0].iter().map(|&n| (n, 5.0 * n)).collect();
        assert!((fit_scaling_exponent(&lin).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exponent_fit_rejects_degenerate_sweeps() {
        assert!(fit_scaling_exponent(&[]).is_none());
        assert!(fit_scaling_exponent(&[(100.0, 5.0)]).is_none());
        // Same n twice is one distinct size.
        assert!(fit_scaling_exponent(&[(100.0, 5.0), (100.0, 6.0)]).is_none());
        // Zero-time points are dropped, leaving one usable point.
        assert!(fit_scaling_exponent(&[(100.0, 0.0), (200.0, 5.0)]).is_none());
    }

    #[test]
    fn suite_seeds_disjoint() {
        let seeds: Vec<u64> = RANDOM_NET_SIZES.iter().map(|&n| suite_seed(n)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
    }
}
