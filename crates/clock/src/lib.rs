//! Zero-skew clock tree construction.
//!
//! §6 of the paper positions its lower/upper bounded spanning trees against
//! the *bounded-skew Steiner heuristics* of clock routing (its references
//! \[11\]-\[13\]), noting that the spanning heuristic "runs fast, and gives
//! reliable estimation of tree cost upper bounds to the Steiner tree
//! heuristics" because node branching cannot place taps mid-wire. This
//! crate provides that Steiner-branching reference point: a classical
//! zero-skew construction in the style of Tsay's exact zero skew / DME —
//!
//! 1. a **balanced topology** over the sinks by recursive geometric
//!    bipartition (the flavour of the recursive-matching approach the
//!    paper cites as reference \[4\]), and
//! 2. a **bottom-up merge** under the linear delay model: each internal
//!    node's tapping point divides the wire between its children so both
//!    sides see identical delay, with *wire snaking* when one side is so
//!    slow that no tapping point suffices.
//!
//! The result has exactly zero skew in path length: every sink sits at the
//! same distance from the source. Comparing its cost with
//! `lub_bkrus(eps1 = 1, eps2 = 0)` quantifies the paper's §6 claim.
//!
//! # Examples
//!
//! ```
//! use bmst_clock::zero_skew_tree;
//! use bmst_geom::{Net, Point};
//!
//! let net = Net::with_source_first(vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(10.0, 2.0),
//!     Point::new(8.0, -6.0),
//!     Point::new(3.0, 9.0),
//! ])?;
//! let zst = zero_skew_tree(&net);
//! // Every sink is exactly equidistant from the source.
//! let d0 = zst.sink_path_length(1);
//! for v in net.sinks() {
//!     assert!((zst.sink_path_length(v) - d0).abs() < 1e-9);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dme;
mod topology;

pub use dme::{zero_skew_tree, ZeroSkewTree};
pub use topology::{balanced_topology, Topology};
