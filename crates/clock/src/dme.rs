//! Bottom-up zero-skew embedding under the linear delay model.

use bmst_geom::{Net, Point};
use bmst_graph::Edge;
use bmst_tree::RoutingTree;

use crate::{balanced_topology, Topology};

/// A zero-skew clock tree: every sink at exactly the same path length from
/// the source.
#[derive(Debug, Clone)]
pub struct ZeroSkewTree {
    /// The routing tree: terminals `0..num_terminals` (the net's node ids)
    /// plus internal tapping points.
    pub tree: RoutingTree,
    /// Coordinates of every node, indexed by node id. Edge *lengths* may
    /// exceed the endpoint distance where wire snaking was needed.
    pub points: Vec<Point>,
    /// Number of original terminals.
    pub num_terminals: usize,
}

impl ZeroSkewTree {
    /// Total wirelength (snaking included).
    #[inline]
    pub fn wirelength(&self) -> f64 {
        self.tree.cost()
    }

    /// Source-to-sink path length of terminal `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a covered terminal.
    #[inline]
    pub fn sink_path_length(&self, v: usize) -> f64 {
        self.tree.dist_from_root(v)
    }

    /// The skew: max minus min source-to-sink path length
    /// (zero, up to rounding, by construction).
    pub fn skew(&self) -> f64 {
        let sinks: Vec<usize> = (0..self.num_terminals)
            .filter(|&v| v != self.tree.root())
            .collect();
        if sinks.is_empty() {
            return 0.0;
        }
        let longest = self.tree.max_dist_from_root(sinks.iter().copied());
        let shortest = self.tree.min_dist_from_root(sinks.iter().copied());
        longest - shortest
    }

    /// Total snaked (detour) wirelength: edge length in excess of the
    /// endpoints' Manhattan distance.
    pub fn snaked_length(&self) -> f64 {
        self.tree
            .edges()
            .iter()
            .map(|e| e.weight - self.points[e.u].manhattan(self.points[e.v]))
            .sum()
    }
}

/// The result of embedding a subtree: its tapping point, the (equal) delay
/// from that point to every sink below it, and the node id holding it.
struct Tap {
    node: usize,
    point: Point,
    delay: f64,
}

/// Merges two embedded subtrees into a zero-skew parent tap (linear delay):
/// the tapping point divides the `l`-to-`r` route so both sides see equal
/// delay; when one side is too slow (`|dl - dr| > L`) the fast side's wire
/// is snaked to make up the difference.
///
/// Returns `(tap point, delay, edge length to l, edge length to r)`.
fn balance(l: &Tap, r: &Tap) -> (Point, f64, f64, f64) {
    let length = l.point.manhattan(r.point);
    // Solve dl + x = dr + (L - x).
    let x = (r.delay - l.delay + length) / 2.0;
    if x < 0.0 {
        // Left side is already slower than right + the whole wire: tap at
        // the left point, snake the right wire.
        (l.point, l.delay, 0.0, l.delay - r.delay)
    } else if x > length {
        (r.point, r.delay, r.delay - l.delay, 0.0)
    } else {
        (walk_l_path(l.point, r.point, x), l.delay + x, x, length - x)
    }
}

/// The point at distance `d` along the L-shaped route from `a` to `b`
/// (corner at `(b.x, a.y)`).
fn walk_l_path(a: Point, b: Point, d: f64) -> Point {
    let leg1 = (b.x - a.x).abs();
    if d <= leg1 {
        Point::new(a.x + (b.x - a.x).signum() * d, a.y)
    } else {
        let rest = d - leg1;
        Point::new(b.x, a.y + (b.y - a.y).signum() * rest)
    }
}

/// Constructs a zero-skew clock tree for the net (linear delay): balanced
/// topology by recursive bipartition, then bottom-up zero-skew merging, and
/// finally a trunk from the source to the top-level tapping point.
///
/// Always succeeds: zero skew is achievable for any sink set under the
/// linear model (snaking can slow any fast branch).
///
/// # Examples
///
/// ```
/// use bmst_clock::zero_skew_tree;
/// use bmst_geom::{Net, Point};
///
/// let net = Net::with_source_first(vec![
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(0.0, 4.0),
/// ])?;
/// let zst = zero_skew_tree(&net);
/// assert!(zst.skew() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[allow(clippy::expect_used)] // construction invariants, justified inline
pub fn zero_skew_tree(net: &Net) -> ZeroSkewTree {
    let n = net.len();
    let source = net.source();
    let mut points: Vec<Point> = net.points().to_vec();
    let mut edges: Vec<Edge> = Vec::new();

    if net.num_sinks() == 0 {
        // lint: allow(no-panic) — a one-node tree with no edges is trivially valid
        let tree = RoutingTree::from_edges(1, source, []).expect("single node");
        return ZeroSkewTree {
            tree,
            points,
            num_terminals: n,
        };
    }

    let sinks: Vec<usize> = net.sinks().collect();
    let topo = balanced_topology(&points, &sinks);
    let top = embed(&topo, &mut points, &mut edges);

    // Trunk from the source to the top tap: adds the same delay to every
    // sink, so the skew stays zero.
    let trunk = net.point(source).manhattan(top.point);
    if top.node != source {
        edges.push(Edge::new(source, top.node, trunk.max(f64::MIN_POSITIVE)));
    }

    let tree = RoutingTree::from_edges(points.len(), source, edges)
        // lint: allow(no-panic) — embed() emits one edge per merge, which is a tree by induction
        .expect("bottom-up merges form a tree");
    ZeroSkewTree {
        tree,
        points,
        num_terminals: n,
    }
}

fn embed(topo: &Topology, points: &mut Vec<Point>, edges: &mut Vec<Edge>) -> Tap {
    match topo {
        Topology::Leaf(s) => Tap {
            node: *s,
            point: points[*s],
            delay: 0.0,
        },
        Topology::Internal(l, r) => {
            let tl = embed(l, points, edges);
            let tr = embed(r, points, edges);
            let (point, delay, wl, wr) = balance(&tl, &tr);
            let node = points.len();
            points.push(point);
            // Zero-length connections still need a positive weight for the
            // Edge type; epsilon wire is physically a via.
            edges.push(Edge::new(node, tl.node, wl.max(f64::MIN_POSITIVE)));
            edges.push(Edge::new(node, tr.node, wr.max(f64::MIN_POSITIVE)));
            Tap { node, point, delay }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_net(seed: u64, n: usize) -> Net {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        Net::with_source_first(pts).unwrap()
    }

    #[test]
    fn skew_is_zero_on_random_nets() {
        for seed in 0..10 {
            let net = random_net(seed, 12);
            let zst = zero_skew_tree(&net);
            assert!(zst.skew() < 1e-9, "seed {seed}: skew {}", zst.skew());
            for t in 0..net.len() {
                assert!(zst.tree.is_covered(t), "seed {seed}: terminal {t}");
            }
        }
    }

    #[test]
    fn balance_midpoint_when_delays_equal() {
        let l = Tap {
            node: 0,
            point: Point::new(0.0, 0.0),
            delay: 0.0,
        };
        let r = Tap {
            node: 1,
            point: Point::new(4.0, 0.0),
            delay: 0.0,
        };
        let (p, d, wl, wr) = balance(&l, &r);
        assert_eq!(p, Point::new(2.0, 0.0));
        assert_eq!(d, 2.0);
        assert_eq!((wl, wr), (2.0, 2.0));
    }

    #[test]
    fn balance_shifts_towards_slower_side() {
        let l = Tap {
            node: 0,
            point: Point::new(0.0, 0.0),
            delay: 3.0,
        };
        let r = Tap {
            node: 1,
            point: Point::new(4.0, 0.0),
            delay: 0.0,
        };
        let (p, d, wl, wr) = balance(&l, &r);
        // x = (0 - 3 + 4)/2 = 0.5 from the left.
        assert_eq!(p, Point::new(0.5, 0.0));
        assert_eq!(d, 3.5);
        assert!((wl - 0.5).abs() < 1e-12 && (wr - 3.5).abs() < 1e-12);
        assert!(
            (3.0 + wl - (0.0 + wr)).abs() < 1e-12,
            "both sides equal delay"
        );
    }

    #[test]
    fn balance_snakes_when_one_side_is_far_slower() {
        let l = Tap {
            node: 0,
            point: Point::new(0.0, 0.0),
            delay: 10.0,
        };
        let r = Tap {
            node: 1,
            point: Point::new(2.0, 0.0),
            delay: 0.0,
        };
        let (p, d, wl, wr) = balance(&l, &r);
        assert_eq!(p, Point::new(0.0, 0.0)); // tap at the slow side
        assert_eq!(d, 10.0);
        assert_eq!(wl, 0.0);
        assert_eq!(wr, 10.0); // 2.0 of geometry + 8.0 of snaking
    }

    #[test]
    fn walk_l_path_both_legs() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(walk_l_path(a, b, 0.0), a);
        assert_eq!(walk_l_path(a, b, 2.0), Point::new(2.0, 0.0));
        assert_eq!(walk_l_path(a, b, 3.0), Point::new(3.0, 0.0));
        assert_eq!(walk_l_path(a, b, 5.0), Point::new(3.0, 2.0));
        assert_eq!(walk_l_path(a, b, 7.0), b);
    }

    #[test]
    fn snaked_length_nonnegative_and_counted() {
        for seed in 0..6 {
            let net = random_net(seed + 40, 9);
            let zst = zero_skew_tree(&net);
            assert!(zst.snaked_length() >= -1e-9, "seed {seed}");
            // Wirelength = geometric length + snaking.
            let geometric: f64 = zst
                .tree
                .edges()
                .iter()
                .map(|e| zst.points[e.u].manhattan(zst.points[e.v]))
                .sum();
            assert!((zst.wirelength() - geometric - zst.snaked_length()).abs() < 1e-6);
        }
    }

    #[test]
    fn cheaper_than_node_branching_zero_skew() {
        // The paper's §6 point: Steiner branching (taps mid-wire) beats the
        // spanning construction's node branching at equal (zero) skew.
        use bmst_instances_free::figure13_like;
        let net = figure13_like();
        let zst = zero_skew_tree(&net);
        assert!(zst.skew() < 1e-9);
        if let Ok(lub) = bmst_core::lub_bkrus(&net, 1.0, 0.0) {
            assert!(
                zst.wirelength() <= lub.cost() + 1e-9,
                "DME {} vs LUB {}",
                zst.wirelength(),
                lub.cost()
            );
        }
    }

    /// Local stand-in for an equidistant sink family (avoids a dev-dep on
    /// bmst-instances).
    mod bmst_instances_free {
        use bmst_geom::{Net, Point};

        pub fn figure13_like() -> Net {
            let mut pts = vec![Point::new(0.0, 0.0)];
            for i in 0..8 {
                // Sinks on the L1 circle of radius 20: (20 - y, y).
                let y = 2.0 * i as f64;
                pts.push(Point::new(20.0 - y, y));
            }
            Net::with_source_first(pts).unwrap()
        }
    }

    #[test]
    fn trivial_nets() {
        let net = Net::with_source_first(vec![Point::new(5.0, 5.0)]).unwrap();
        let zst = zero_skew_tree(&net);
        assert_eq!(zst.wirelength(), 0.0);
        assert_eq!(zst.skew(), 0.0);

        let net = Net::with_source_first(vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)]).unwrap();
        let zst = zero_skew_tree(&net);
        assert!((zst.sink_path_length(1) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn sink_path_equals_trunk_plus_top_delay() {
        let net = random_net(7, 10);
        let zst = zero_skew_tree(&net);
        let d0 = zst.sink_path_length(net.sinks().next().unwrap());
        for v in net.sinks() {
            assert!((zst.sink_path_length(v) - d0).abs() < 1e-9);
        }
        // The common path length is at least R (no tree can beat the direct
        // distance to the farthest sink).
        assert!(d0 + 1e-9 >= net.source_radius());
    }
}
