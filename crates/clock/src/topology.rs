//! Balanced clock topologies by recursive geometric bipartition.

use bmst_geom::Point;

/// A binary topology over sink indices: the connection *order* of a clock
/// tree, decided before any wiring is embedded.
///
/// # Examples
///
/// ```
/// use bmst_clock::{balanced_topology, Topology};
/// use bmst_geom::Point;
///
/// let pts = [
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(10.0, 0.0),
///     Point::new(11.0, 0.0),
/// ];
/// let topo = balanced_topology(&pts, &[0, 1, 2, 3]);
/// assert_eq!(topo.len(), 4);
/// assert_eq!(topo.depth(), 2);
/// let mut sinks = topo.sinks();
/// sinks.sort_unstable();
/// assert_eq!(sinks, vec![0, 1, 2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// A single sink.
    Leaf(usize),
    /// Two subtrees to be merged.
    Internal(Box<Topology>, Box<Topology>),
}

impl Topology {
    /// Number of sinks in the subtree.
    pub fn len(&self) -> usize {
        match self {
            Topology::Leaf(_) => 1,
            Topology::Internal(l, r) => l.len() + r.len(),
        }
    }

    /// Returns `true` for an impossible state — topologies always hold at
    /// least one sink; provided for API symmetry with `len`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Depth of the topology (a leaf has depth 0).
    pub fn depth(&self) -> usize {
        match self {
            Topology::Leaf(_) => 0,
            Topology::Internal(l, r) => 1 + l.depth().max(r.depth()),
        }
    }

    /// The sink indices, left to right.
    pub fn sinks(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len());
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<usize>) {
        match self {
            Topology::Leaf(s) => out.push(*s),
            Topology::Internal(l, r) => {
                l.collect(out);
                r.collect(out);
            }
        }
    }
}

/// Builds a balanced topology over `sinks` by recursive geometric
/// bipartition: split at the median of the wider spread (x or y),
/// alternating naturally with the geometry, so sinks that are close end up
/// merged early — the ingredient that keeps DME-style embeddings cheap.
///
/// # Panics
///
/// Panics if `sinks` is empty or an index is out of bounds of `points`.
pub fn balanced_topology(points: &[Point], sinks: &[usize]) -> Topology {
    assert!(!sinks.is_empty(), "topology over no sinks");
    for &s in sinks {
        assert!(s < points.len(), "sink {s} out of bounds");
    }
    let mut ids: Vec<usize> = sinks.to_vec();
    split(points, &mut ids)
}

fn split(points: &[Point], ids: &mut [usize]) -> Topology {
    if ids.len() == 1 {
        return Topology::Leaf(ids[0]);
    }
    // Split along the dimension with the wider spread.
    let (min_x, max_x) = minmax(ids.iter().map(|&i| points[i].x));
    let (min_y, max_y) = minmax(ids.iter().map(|&i| points[i].y));
    if max_x - min_x >= max_y - min_y {
        ids.sort_by(|&a, &b| points[a].x.total_cmp(&points[b].x).then(a.cmp(&b)));
    } else {
        ids.sort_by(|&a, &b| points[a].y.total_cmp(&points[b].y).then(a.cmp(&b)));
    }
    let mid = ids.len() / 2;
    let (left, right) = ids.split_at_mut(mid);
    Topology::Internal(
        Box::new(split(points, left)),
        Box::new(split(points, right)),
    )
}

fn minmax(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    fn grid_points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i % 4) as f64, (i / 4) as f64))
            .collect()
    }

    #[test]
    fn covers_every_sink_once() {
        let pts = grid_points(9);
        let sinks: Vec<usize> = (0..9).collect();
        let topo = balanced_topology(&pts, &sinks);
        let mut got = topo.sinks();
        got.sort_unstable();
        assert_eq!(got, sinks);
        assert_eq!(topo.len(), 9);
    }

    #[test]
    fn depth_is_logarithmic() {
        let pts = grid_points(16);
        let sinks: Vec<usize> = (0..16).collect();
        let topo = balanced_topology(&pts, &sinks);
        assert_eq!(topo.depth(), 4); // perfectly balanced on 16 leaves
    }

    #[test]
    fn single_sink_is_a_leaf() {
        let pts = grid_points(3);
        assert_eq!(balanced_topology(&pts, &[2]), Topology::Leaf(2));
    }

    #[test]
    fn splits_along_wider_dimension_first() {
        // Points spread along x: the first split separates left from right.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.1),
            Point::new(10.0, 0.0),
            Point::new(11.0, 0.1),
        ];
        let topo = balanced_topology(&pts, &[0, 1, 2, 3]);
        let Topology::Internal(l, r) = topo else {
            panic!("expected split")
        };
        let mut left = l.sinks();
        left.sort_unstable();
        let mut right = r.sinks();
        right.sort_unstable();
        assert_eq!(left, vec![0, 1]);
        assert_eq!(right, vec![2, 3]);
    }

    #[test]
    fn deterministic() {
        let pts = grid_points(10);
        let sinks: Vec<usize> = (0..10).collect();
        assert_eq!(
            balanced_topology(&pts, &sinks),
            balanced_topology(&pts, &sinks)
        );
    }

    #[test]
    #[should_panic(expected = "no sinks")]
    fn empty_sinks_panics() {
        balanced_topology(&grid_points(2), &[]);
    }

    #[test]
    fn coincident_points_handled() {
        let pts = vec![Point::new(1.0, 1.0); 5];
        let topo = balanced_topology(&pts, &[0, 1, 2, 3, 4]);
        assert_eq!(topo.len(), 5);
    }
}
