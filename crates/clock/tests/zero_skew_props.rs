//! Property tests: zero skew must hold for *every* sink geometry, not just
//! the sampled ones.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // tests may panic and compare exact floats

use bmst_clock::{balanced_topology, zero_skew_tree};
use bmst_geom::{Net, Point};
use proptest::prelude::*;

fn arb_net() -> impl Strategy<Value = Net> {
    proptest::collection::vec((0i32..400, 0i32..400), 1..=14).prop_map(|coords| {
        let pts: Vec<Point> = coords
            .iter()
            .map(|&(x, y)| Point::new(x as f64 * 0.25, y as f64 * 0.25))
            .collect();
        Net::with_source_first(pts).expect("finite")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly zero skew, every terminal covered, and the common path
    /// length at least R (no construction beats the direct distance).
    #[test]
    fn zero_skew_everywhere(net in arb_net()) {
        let zst = zero_skew_tree(&net);
        prop_assert!(zst.skew() < 1e-6, "skew {}", zst.skew());
        for t in 0..net.len() {
            prop_assert!(zst.tree.is_covered(t));
        }
        if net.num_sinks() > 0 {
            let common = zst.sink_path_length(net.sinks().next().expect("sink"));
            prop_assert!(common + 1e-6 >= net.source_radius());
        }
    }

    /// Wirelength accounting: cost = geometric length + snaking, with
    /// snaking non-negative.
    #[test]
    fn wirelength_decomposes(net in arb_net()) {
        let zst = zero_skew_tree(&net);
        prop_assert!(zst.snaked_length() >= -1e-9);
        let geometric: f64 = zst
            .tree
            .edges()
            .iter()
            .map(|e| zst.points[e.u].manhattan(zst.points[e.v]))
            .sum();
        prop_assert!((zst.wirelength() - geometric - zst.snaked_length()).abs() < 1e-6);
    }

    /// Topologies partition the sinks regardless of geometry.
    #[test]
    fn topology_partitions(net in arb_net()) {
        if net.num_sinks() == 0 {
            return Ok(());
        }
        let sinks: Vec<usize> = net.sinks().collect();
        let topo = balanced_topology(net.points(), &sinks);
        let mut got = topo.sinks();
        got.sort_unstable();
        let mut want = sinks.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // Balanced split: depth at most ceil(log2(n)) + 1.
        let bound = (net.num_sinks() as f64).log2().ceil() as usize + 1;
        prop_assert!(topo.depth() <= bound.max(1));
    }
}
