//! Sparse adjacency-list representation.

use crate::Edge;

/// An undirected weighted graph stored as adjacency lists.
///
/// Used wherever the workspace needs a *sparse* graph: the BRBC baseline's
/// `MST + shortcut` union graph and the Hanan routing grid for Steiner
/// construction.
///
/// # Examples
///
/// ```
/// use bmst_graph::{AdjacencyList, Edge};
///
/// let g = AdjacencyList::from_edges(3, &[Edge::new(0, 1, 2.0), Edge::new(1, 2, 3.0)]);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![(1, 2.0)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AdjacencyList {
    adj: Vec<Vec<(usize, f64)>>,
}

impl AdjacencyList {
    /// Creates an empty graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        AdjacencyList {
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if any edge references a node `>= n`.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let mut g = AdjacencyList::new(n);
        for e in edges {
            g.add_edge(e.u, e.v, e.weight);
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Returns `true` when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds an undirected edge. Parallel edges are kept (harmless for
    /// shortest-path queries; callers that care deduplicate themselves).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds, or if `u == v`.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) {
        assert!(u != v, "self-loop ({u}, {v})");
        assert!(
            u < self.len() && v < self.len(),
            "edge ({u}, {v}) out of bounds"
        );
        self.adj[u].push((v, weight));
        self.adj[v].push((u, weight));
    }

    /// Appends an isolated node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Degree of node `u` (counting parallel edges).
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Iterator over `(neighbor, weight)` pairs of node `u`.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.adj[u].iter().copied()
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn empty_graph() {
        let g = AdjacencyList::new(0);
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn from_edges_builds_symmetric_adjacency() {
        let g = AdjacencyList::from_edges(3, &[Edge::new(0, 2, 5.0)]);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![(2, 5.0)]);
        assert_eq!(g.neighbors(2).collect::<Vec<_>>(), vec![(0, 5.0)]);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = AdjacencyList::new(1);
        let v = g.add_node();
        assert_eq!(v, 1);
        g.add_edge(0, 1, 1.0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_edge_panics() {
        AdjacencyList::new(2).add_edge(0, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        AdjacencyList::new(2).add_edge(1, 1, 1.0);
    }

    #[test]
    fn parallel_edges_are_kept() {
        let mut g = AdjacencyList::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 2.0);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.edge_count(), 2);
    }
}
