//! Weighted undirected edges and the canonical edge ordering.

use std::cmp::Ordering;
use std::fmt;

use bmst_geom::DistanceMatrix;

/// A weighted undirected edge between node indices `u` and `v`.
///
/// Construction normalises the endpoint order to `u <= v` so that an edge
/// has exactly one representation, which in turn makes the canonical
/// `(weight, u, v)` sort a strict total order and every Kruskal-style
/// construction in the workspace deterministic.
///
/// # Examples
///
/// ```
/// use bmst_graph::Edge;
///
/// let e = Edge::new(5, 2, 1.5);
/// assert_eq!((e.u, e.v), (2, 5)); // endpoints normalised
/// assert!(e.connects(5) && e.connects(2) && !e.connects(3));
/// assert_eq!(e.other(2), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Smaller endpoint index.
    pub u: usize,
    /// Larger endpoint index.
    pub v: usize,
    /// Edge weight (wirelength).
    pub weight: f64,
}

impl Edge {
    /// Creates an edge, normalising endpoints so `u <= v`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loops are never meaningful here) or if the
    /// weight is not finite.
    #[inline]
    pub fn new(a: usize, b: usize, weight: f64) -> Self {
        assert!(a != b, "self-loop edge ({a}, {b})");
        assert!(
            weight.is_finite(),
            "edge weight must be finite, got {weight}"
        );
        let (u, v) = if a <= b { (a, b) } else { (b, a) };
        Edge { u, v, weight }
    }

    /// Returns `true` if `node` is one of the endpoints.
    #[inline]
    pub fn connects(&self, node: usize) -> bool {
        self.u == node || self.v == node
    }

    /// The endpoint that is not `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, node: usize) -> usize {
        if node == self.u {
            self.v
        } else if node == self.v {
            self.u
        } else {
            // lint: allow(no-panic) — misuse of a documented `# Panics` contract
            panic!(
                "node {node} is not an endpoint of edge ({}, {})",
                self.u, self.v
            )
        }
    }

    /// The endpoint pair `(u, v)` with `u <= v`.
    #[inline]
    pub fn endpoints(&self) -> (usize, usize) {
        (self.u, self.v)
    }

    /// Canonical total order: by weight, then `u`, then `v`.
    ///
    /// Weights are finite by construction; `total_cmp` keeps the order
    /// total without a panicking unwrap even if that invariant breaks.
    #[inline]
    pub fn canonical_cmp(&self, other: &Edge) -> Ordering {
        self.weight
            .total_cmp(&other.weight)
            .then(self.u.cmp(&other.u))
            .then(self.v.cmp(&other.v))
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}-{}: {})", self.u, self.v, self.weight)
    }
}

/// All `n * (n - 1) / 2` edges of the complete graph whose weights come from
/// a distance matrix.
///
/// This is the edge set `E` of the paper's routing graph `G(V, E)` for the
/// spanning-tree constructions.
///
/// ```
/// use bmst_geom::{DistanceMatrix, Metric, Point};
/// use bmst_graph::complete_edges;
///
/// let d = DistanceMatrix::from_points(
///     &[Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(0.0, 2.0)],
///     Metric::L1,
/// );
/// let edges = complete_edges(&d);
/// assert_eq!(edges.len(), 3);
/// ```
pub fn complete_edges(d: &DistanceMatrix) -> Vec<Edge> {
    let n = d.len();
    let mut edges = Vec::with_capacity(n.saturating_sub(1) * n / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push(Edge::new(u, v, d[(u, v)]));
        }
    }
    edges
}

/// Sorts edges in the canonical nondecreasing `(weight, u, v)` order
/// (the paper's BKRUS line 8: "sort the edge set E in nondecreasing order
/// of weights").
pub fn sort_edges(edges: &mut [Edge]) {
    edges.sort_by(Edge::canonical_cmp);
}

/// Total weight of an edge collection (the paper's `cost(T)` when applied to
/// the edges of a tree).
pub fn tree_cost(edges: &[Edge]) -> f64 {
    edges.iter().map(|e| e.weight).sum()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use bmst_geom::{Metric, Point};

    #[test]
    fn new_normalises_endpoints() {
        let e = Edge::new(7, 3, 2.0);
        assert_eq!(e.endpoints(), (3, 7));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        Edge::new(4, 4, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_weight_panics() {
        Edge::new(0, 1, f64::NAN);
    }

    #[test]
    fn other_endpoint() {
        let e = Edge::new(1, 2, 1.0);
        assert_eq!(e.other(1), 2);
        assert_eq!(e.other(2), 1);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_of_non_endpoint_panics() {
        Edge::new(1, 2, 1.0).other(3);
    }

    #[test]
    fn canonical_order_breaks_ties_by_indices() {
        let mut edges = vec![
            Edge::new(2, 3, 1.0),
            Edge::new(0, 5, 1.0),
            Edge::new(0, 1, 0.5),
        ];
        sort_edges(&mut edges);
        assert_eq!(edges[0].endpoints(), (0, 1));
        assert_eq!(edges[1].endpoints(), (0, 5));
        assert_eq!(edges[2].endpoints(), (2, 3));
    }

    #[test]
    fn complete_edges_count_and_weights() {
        let d = bmst_geom::DistanceMatrix::from_points(
            &[
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.0, 2.0),
                Point::new(1.0, 2.0),
            ],
            Metric::L1,
        );
        let edges = complete_edges(&d);
        assert_eq!(edges.len(), 6);
        let e01 = edges.iter().find(|e| e.endpoints() == (0, 1)).unwrap();
        assert_eq!(e01.weight, 1.0);
    }

    #[test]
    fn tree_cost_sums_weights() {
        let edges = vec![Edge::new(0, 1, 1.5), Edge::new(1, 2, 2.5)];
        assert_eq!(tree_cost(&edges), 4.0);
        assert_eq!(tree_cost(&[]), 0.0);
    }

    #[test]
    fn display_shows_endpoints_and_weight() {
        assert_eq!(Edge::new(0, 1, 2.0).to_string(), "(0-1: 2)");
    }
}
