//! Dijkstra single-source shortest paths.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::AdjacencyList;

/// Result of a single-source shortest-path computation.
///
/// `dist[v]` is the shortest-path distance from the source to `v`
/// (`f64::INFINITY` when unreachable); `parent[v]` is the predecessor of `v`
/// on one shortest path (`None` for the source and unreachable nodes).
///
/// The shortest path *tree* encoded by `parent` is the paper's SPT: the tree
/// whose critical path delay is minimal but whose cost may be excessive.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPaths {
    /// Shortest distance from the source to each node.
    pub dist: Vec<f64>,
    /// Predecessor on a shortest path, `None` at the source / unreachable.
    pub parent: Vec<Option<usize>>,
    /// The source node the query was run from.
    pub source: usize,
}

impl ShortestPaths {
    /// The radius of the shortest path tree: the largest finite distance
    /// (0.0 for a single-node graph). Unreachable nodes are ignored.
    pub fn radius(&self) -> f64 {
        self.dist
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(0.0, f64::max)
    }

    /// Nodes on the path from the source to `v`, source first.
    /// Returns `None` if `v` is unreachable.
    pub fn path_to(&self, v: usize) -> Option<Vec<usize>> {
        if !self.dist[v].is_finite() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Returns `true` when every node is reachable from the source.
    pub fn all_reachable(&self) -> bool {
        self.dist.iter().all(|d| d.is_finite())
    }
}

/// Min-heap entry ordered by distance (reversed for `BinaryHeap`).
#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smallest distance pops first. Distances are finite
        // (weights validated by Edge); `total_cmp` keeps the order total
        // regardless. Ties break on node index for determinism.
        other
            .dist
            .total_cmp(&self.dist)
            .then(other.node.cmp(&self.node))
    }
}

/// Dijkstra's algorithm from `source` over a non-negatively weighted graph.
///
/// # Panics
///
/// Panics if `source` is out of bounds or any edge weight is negative.
///
/// # Examples
///
/// ```
/// use bmst_graph::{dijkstra, AdjacencyList, Edge};
///
/// // 0 --1-- 1 --1-- 2, plus a heavy direct edge 0 --5-- 2.
/// let g = AdjacencyList::from_edges(
///     3,
///     &[Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0), Edge::new(0, 2, 5.0)],
/// );
/// let sp = dijkstra(&g, 0);
/// assert_eq!(sp.dist, vec![0.0, 1.0, 2.0]);
/// assert_eq!(sp.path_to(2), Some(vec![0, 1, 2]));
/// ```
pub fn dijkstra(graph: &AdjacencyList, source: usize) -> ShortestPaths {
    let n = graph.len();
    assert!(source < n, "source {source} out of bounds for {n} nodes");
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapItem {
        dist: 0.0,
        node: source,
    });

    while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        for (v, w) in graph.neighbors(u) {
            assert!(w >= 0.0, "negative edge weight {w} on ({u}, {v})");
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                parent[v] = Some(u);
                heap.push(HeapItem { dist: nd, node: v });
            }
        }
    }

    ShortestPaths {
        dist,
        parent,
        source,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::Edge;

    #[test]
    fn single_node_graph() {
        let g = AdjacencyList::new(1);
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist, vec![0.0]);
        assert_eq!(sp.radius(), 0.0);
        assert!(sp.all_reachable());
        assert_eq!(sp.path_to(0), Some(vec![0]));
    }

    #[test]
    fn disconnected_node_is_unreachable() {
        let g = AdjacencyList::from_edges(3, &[Edge::new(0, 1, 1.0)]);
        let sp = dijkstra(&g, 0);
        assert!(!sp.all_reachable());
        assert_eq!(sp.dist[2], f64::INFINITY);
        assert_eq!(sp.path_to(2), None);
        assert_eq!(sp.radius(), 1.0); // ignores the unreachable node
    }

    #[test]
    fn prefers_cheaper_multi_hop_path() {
        let g = AdjacencyList::from_edges(
            4,
            &[
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 1.0),
                Edge::new(2, 3, 1.0),
                Edge::new(0, 3, 10.0),
            ],
        );
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[3], 3.0);
        assert_eq!(sp.path_to(3), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn complete_graph_spt_is_star_in_metric_space() {
        // In a metric complete graph the shortest path to each node is the
        // direct edge (triangle inequality), so the SPT is a star.
        use bmst_geom::{DistanceMatrix, Metric, Point};
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(-2.0, 2.0),
            Point::new(1.0, -4.0),
        ];
        let d = DistanceMatrix::from_points(&pts, Metric::L1);
        let edges = crate::complete_edges(&d);
        let g = AdjacencyList::from_edges(4, &edges);
        let sp = dijkstra(&g, 0);
        for v in 1..4 {
            assert_eq!(sp.dist[v], d[(0, v)]);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_source_panics() {
        dijkstra(&AdjacencyList::new(2), 5);
    }

    #[test]
    fn zero_weight_edges_are_fine() {
        let g = AdjacencyList::from_edges(2, &[Edge::new(0, 1, 0.0)]);
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[1], 0.0);
    }
}
