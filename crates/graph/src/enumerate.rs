//! Enumeration of spanning trees in nondecreasing cost order.
//!
//! This is the primitive behind Gabow's 1977 algorithm ("Two algorithms for
//! generating weighted spanning trees in order"), in the standard
//! partition-refinement formulation: subproblems are `(forced, banned)`
//! edge-set pairs represented by their constrained MST and kept in a
//! priority queue keyed by tree cost. Popping in cost order yields every
//! spanning tree exactly once, cheapest first.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{sort_edges, DisjointSets, Edge};

/// A spanning tree produced by [`SpanningTreeEnumerator`].
#[derive(Debug, Clone, PartialEq)]
pub struct EnumeratedTree {
    /// The tree's edges.
    pub edges: Vec<Edge>,
    /// Total weight.
    pub cost: f64,
}

/// Iterator over all spanning trees of a graph in nondecreasing cost order.
///
/// # Examples
///
/// ```
/// use bmst_graph::{Edge, SpanningTreeEnumerator};
///
/// // A triangle has exactly three spanning trees.
/// let edges = vec![
///     Edge::new(0, 1, 1.0),
///     Edge::new(1, 2, 2.0),
///     Edge::new(0, 2, 3.0),
/// ];
/// let costs: Vec<f64> =
///     SpanningTreeEnumerator::new(3, edges).map(|t| t.cost).collect();
/// assert_eq!(costs, vec![3.0, 4.0, 5.0]);
/// ```
#[derive(Debug)]
pub struct SpanningTreeEnumerator {
    n: usize,
    edges: Vec<Edge>,
    heap: BinaryHeap<Partition>,
    seq: usize,
}

#[derive(Debug, Clone)]
struct Partition {
    forced: Vec<usize>,
    banned: Vec<bool>,
    tree: Vec<usize>,
    cost: f64,
    seq: usize,
}

impl PartialEq for Partition {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.seq == other.seq
    }
}
impl Eq for Partition {}
impl PartialOrd for Partition {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Partition {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the cheapest pops first; sequence breaks ties
        // deterministically. Costs are finite sums of finite weights;
        // `total_cmp` keeps the order total regardless.
        other
            .cost
            .total_cmp(&self.cost)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Kruskal with `forced` pre-merged and `banned` skipped; `None` when the
/// partition has no spanning tree.
fn constrained_mst(
    n: usize,
    edges: &[Edge],
    forced: &[usize],
    banned: &[bool],
) -> Option<(Vec<usize>, f64)> {
    let mut dsu = DisjointSets::new(n);
    let mut tree = Vec::with_capacity(n.saturating_sub(1));
    let mut cost = 0.0;
    for &i in forced {
        if !dsu.union(edges[i].u, edges[i].v) {
            return None;
        }
        tree.push(i);
        cost += edges[i].weight;
    }
    for (i, e) in edges.iter().enumerate() {
        if tree.len() + 1 == n {
            break;
        }
        if banned[i] || forced.contains(&i) {
            continue;
        }
        if dsu.union(e.u, e.v) {
            tree.push(i);
            cost += e.weight;
        }
    }
    (tree.len() + 1 == n || n == 0).then_some((tree, cost))
}

impl SpanningTreeEnumerator {
    /// Creates an enumerator over the spanning trees of the graph with `n`
    /// nodes and the given edges.
    pub fn new(n: usize, edges: Vec<Edge>) -> Self {
        Self::with_forced(n, edges, &[])
    }

    /// Like [`SpanningTreeEnumerator::new`], but every yielded tree must
    /// contain all the `forced` edges (given by their endpoint pairs).
    ///
    /// Forced endpoint pairs that match no edge are ignored.
    pub fn with_forced(n: usize, mut edges: Vec<Edge>, forced: &[(usize, usize)]) -> Self {
        sort_edges(&mut edges);
        let forced_idx: Vec<usize> = forced
            .iter()
            .filter_map(|&(a, b)| {
                let pair = (a.min(b), a.max(b));
                edges.iter().position(|e| e.endpoints() == pair)
            })
            .collect();
        let mut heap = BinaryHeap::new();
        let banned = vec![false; edges.len()];
        if n > 0 {
            if let Some((tree, cost)) = constrained_mst(n, &edges, &forced_idx, &banned) {
                heap.push(Partition {
                    forced: forced_idx,
                    banned,
                    tree,
                    cost,
                    seq: 0,
                });
            }
        }
        SpanningTreeEnumerator {
            n,
            edges,
            heap,
            seq: 1,
        }
    }
}

impl Iterator for SpanningTreeEnumerator {
    type Item = EnumeratedTree;

    fn next(&mut self) -> Option<EnumeratedTree> {
        let part = self.heap.pop()?;

        // Branch on the free edges of the popped tree: child i bans free
        // edge i and forces free edges 0..i, partitioning the remaining
        // trees of this subproblem.
        let free: Vec<usize> = part
            .tree
            .iter()
            .copied()
            .filter(|i| !part.forced.contains(i))
            .collect();
        let mut forced_acc = part.forced.clone();
        for &ban in &free {
            let mut banned = part.banned.clone();
            banned[ban] = true;
            if let Some((tree, cost)) = constrained_mst(self.n, &self.edges, &forced_acc, &banned) {
                self.heap.push(Partition {
                    forced: forced_acc.clone(),
                    banned,
                    tree,
                    cost,
                    seq: self.seq,
                });
                self.seq += 1;
            }
            forced_acc.push(ban);
        }

        Some(EnumeratedTree {
            edges: part.tree.iter().map(|&i| self.edges[i]).collect(),
            cost: part.cost,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::complete_edges;
    use bmst_geom::{DistanceMatrix, Metric, Point};

    fn complete(n: usize) -> Vec<Edge> {
        // Distinct-ish weights from a fixed point set.
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new((i * i % 7) as f64, (i * 3 % 5) as f64 + i as f64 * 0.1))
            .collect();
        complete_edges(&DistanceMatrix::from_points(&pts, Metric::L1))
    }

    #[test]
    fn cayley_counts() {
        // Number of spanning trees of K_n is n^(n-2).
        for n in [2usize, 3, 4, 5] {
            let count = SpanningTreeEnumerator::new(n, complete(n)).count();
            assert_eq!(count, n.pow(u32::try_from(n).unwrap() - 2), "K_{n}");
        }
    }

    #[test]
    fn costs_nondecreasing_and_first_is_mst() {
        let edges = complete(5);
        let mst = crate::kruskal_mst(5, &edges).unwrap();
        let mst_cost: f64 = mst.iter().map(|e| e.weight).sum();
        let costs: Vec<f64> = SpanningTreeEnumerator::new(5, edges)
            .map(|t| t.cost)
            .collect();
        assert!((costs[0] - mst_cost).abs() < 1e-9);
        for w in costs.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
    }

    #[test]
    fn trees_are_distinct() {
        let trees: Vec<Vec<(usize, usize)>> = SpanningTreeEnumerator::new(4, complete(4))
            .map(|t| {
                let mut ids: Vec<(usize, usize)> = t.edges.iter().map(Edge::endpoints).collect();
                ids.sort_unstable();
                ids
            })
            .collect();
        let mut uniq = trees.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), trees.len());
    }

    #[test]
    fn forced_edge_in_every_tree() {
        let trees: Vec<EnumeratedTree> =
            SpanningTreeEnumerator::with_forced(4, complete(4), &[(0, 3)]).collect();
        assert!(!trees.is_empty());
        // 4^2 = 16 trees total; forcing one edge keeps those containing it:
        // by symmetry of Cayley's formula that is 16 * (n-1)/binom... just
        // check the constraint and that we got strictly fewer than all.
        assert!(trees.len() < 16);
        for t in &trees {
            assert!(t.edges.iter().any(|e| e.endpoints() == (0, 3)));
        }
    }

    #[test]
    fn disconnected_graph_yields_nothing() {
        let edges = vec![Edge::new(0, 1, 1.0)];
        assert_eq!(SpanningTreeEnumerator::new(3, edges).count(), 0);
    }

    #[test]
    fn single_node_yields_empty_tree() {
        let mut it = SpanningTreeEnumerator::new(1, vec![]);
        let t = it.next().unwrap();
        assert!(t.edges.is_empty());
        assert_eq!(t.cost, 0.0);
        assert!(it.next().is_none());
    }

    #[test]
    fn path_graph_has_one_tree() {
        let edges = vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 2.0)];
        let trees: Vec<_> = SpanningTreeEnumerator::new(3, edges).collect();
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].cost, 3.0);
    }
}
