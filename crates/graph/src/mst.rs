//! Minimum spanning trees: Kruskal (edge-list) and Prim (dense).

use std::error::Error;
use std::fmt;

use bmst_geom::DistanceMatrix;

use crate::{sort_edges, DisjointSets, Edge};

/// Errors produced by graph algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The input graph does not connect all nodes, so no spanning tree
    /// exists.
    Disconnected {
        /// Number of connected components found.
        components: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Disconnected { components } => {
                write!(f, "graph is disconnected ({components} components)")
            }
        }
    }
}

impl Error for GraphError {}

/// Kruskal's minimum spanning tree over `n` nodes.
///
/// Edges are considered in the canonical `(weight, u, v)` order, so the
/// result is deterministic even with tied weights. This is the cost baseline
/// `cost(MST)` against which every performance ratio in the paper's tables
/// is computed, and BKRUS degenerates to exactly this construction when
/// `eps = inf`.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] when the edges do not connect all
/// `n` nodes.
///
/// # Examples
///
/// ```
/// use bmst_graph::{kruskal_mst, Edge};
///
/// let edges = [
///     Edge::new(0, 1, 1.0),
///     Edge::new(1, 2, 2.0),
///     Edge::new(0, 2, 3.0),
/// ];
/// let mst = kruskal_mst(3, &edges)?;
/// assert_eq!(mst.len(), 2);
/// assert_eq!(bmst_graph::tree_cost(&mst), 3.0);
/// # Ok::<(), bmst_graph::GraphError>(())
/// ```
pub fn kruskal_mst(n: usize, edges: &[Edge]) -> Result<Vec<Edge>, GraphError> {
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut sorted: Vec<Edge> = edges.to_vec();
    sort_edges(&mut sorted);
    let mut dsu = DisjointSets::new(n);
    let mut tree = Vec::with_capacity(n - 1);
    for e in sorted {
        if dsu.union(e.u, e.v) {
            tree.push(e);
            if tree.len() == n - 1 {
                break;
            }
        }
    }
    if tree.len() + 1 != n {
        return Err(GraphError::Disconnected {
            components: dsu.num_sets(),
        });
    }
    Ok(tree)
}

/// Prim's minimum spanning tree over a dense distance matrix, rooted at
/// `root`. Returns the tree's edges.
///
/// `O(V^2)` time, which is optimal for the complete graphs the paper works
/// on. Produces a tree of the same cost as [`kruskal_mst`] (the edge sets may
/// differ when weights tie).
///
/// # Panics
///
/// Panics if `root` is out of bounds of the matrix, or the matrix is empty.
///
/// # Examples
///
/// ```
/// use bmst_geom::{DistanceMatrix, Metric, Point};
/// use bmst_graph::{prim_mst, tree_cost};
///
/// let d = DistanceMatrix::from_points(
///     &[Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)],
///     Metric::L1,
/// );
/// let mst = prim_mst(&d, 0);
/// assert_eq!(tree_cost(&mst), 2.0);
/// ```
pub fn prim_mst(d: &DistanceMatrix, root: usize) -> Vec<Edge> {
    // Documented contract: panic on an empty matrix too, which the n == 0
    // early return in `prim_mst_with` would otherwise soften.
    assert!(
        root < d.len(),
        "root {root} out of bounds for {} nodes",
        d.len()
    );
    prim_mst_with(d.len(), root, |i, j| d[(i, j)])
}

/// [`prim_mst`] over an on-demand distance oracle instead of a materialized
/// matrix: `dist(i, j)` must return the edge weight between nodes `i` and
/// `j` of a complete graph on `n` nodes. Same `O(V^2)` selection — and the
/// same tree, bit for bit, when `dist` returns the bits the matrix would
/// hold — but `O(V)` memory, which is what sparse-supply callers need.
///
/// # Panics
///
/// Panics if `root >= n` and `n > 0`.
pub fn prim_mst_with<F: Fn(usize, usize) -> f64>(n: usize, root: usize, dist: F) -> Vec<Edge> {
    if n == 0 {
        return Vec::new();
    }
    assert!(root < n, "root {root} out of bounds for {n} nodes");
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut best_from = vec![usize::MAX; n];
    in_tree[root] = true;
    for v in 0..n {
        if v != root {
            best[v] = dist(root, v);
            best_from[v] = root;
        }
    }
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for _ in 1..n {
        // Deterministic pick: smallest key, lowest index on ties.
        let mut pick = usize::MAX;
        let mut pick_key = f64::INFINITY;
        for v in 0..n {
            if !in_tree[v] && best[v] < pick_key {
                pick = v;
                pick_key = best[v];
            }
        }
        debug_assert!(pick != usize::MAX, "complete graph cannot be disconnected");
        in_tree[pick] = true;
        edges.push(Edge::new(best_from[pick], pick, pick_key));
        for v in 0..n {
            if !in_tree[v] {
                let w = dist(pick, v);
                if w < best[v] {
                    best[v] = w;
                    best_from[v] = pick;
                }
            }
        }
    }
    edges
}

/// Cost of the minimum spanning tree of the complete graph over `d`.
///
/// Convenience wrapper used pervasively by the benchmark harness.
pub fn mst_cost(d: &DistanceMatrix) -> f64 {
    if d.is_empty() {
        return 0.0;
    }
    prim_mst(d, 0).iter().map(|e| e.weight).sum()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::{complete_edges, tree_cost};
    use bmst_geom::{Metric, Point};

    fn line_points(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64, 0.0)).collect()
    }

    #[test]
    fn kruskal_on_triangle_drops_heaviest() {
        let edges = [
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 2.0),
            Edge::new(0, 2, 3.0),
        ];
        let mst = kruskal_mst(3, &edges).unwrap();
        assert_eq!(tree_cost(&mst), 3.0);
        assert!(!mst.iter().any(|e| e.endpoints() == (0, 2)));
    }

    #[test]
    fn kruskal_detects_disconnection() {
        let edges = [Edge::new(0, 1, 1.0)];
        let err = kruskal_mst(3, &edges).unwrap_err();
        assert_eq!(err, GraphError::Disconnected { components: 2 });
    }

    #[test]
    fn kruskal_empty_graph() {
        assert_eq!(kruskal_mst(0, &[]).unwrap(), vec![]);
        assert_eq!(kruskal_mst(1, &[]).unwrap(), vec![]);
        assert!(kruskal_mst(2, &[]).is_err());
    }

    #[test]
    fn prim_and_kruskal_agree_on_cost() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(2.0, 5.0),
            Point::new(7.0, 3.0),
            Point::new(1.0, 2.0),
        ];
        let d = bmst_geom::DistanceMatrix::from_points(&pts, Metric::L1);
        let kruskal = kruskal_mst(5, &complete_edges(&d)).unwrap();
        let prim = prim_mst(&d, 0);
        assert!((tree_cost(&kruskal) - tree_cost(&prim)).abs() < 1e-9);
        assert_eq!(mst_cost(&d), tree_cost(&prim));
    }

    #[test]
    fn mst_on_a_line_chains_neighbors() {
        let d = bmst_geom::DistanceMatrix::from_points(&line_points(6), Metric::L1);
        let mst = prim_mst(&d, 0);
        assert_eq!(tree_cost(&mst), 5.0);
        // Every edge is unit length between consecutive points.
        for e in &mst {
            assert_eq!(e.weight, 1.0);
            assert_eq!(e.v - e.u, 1);
        }
    }

    #[test]
    fn prim_single_node() {
        let d = bmst_geom::DistanceMatrix::from_points(&line_points(1), Metric::L1);
        assert!(prim_mst(&d, 0).is_empty());
        assert_eq!(mst_cost(&d), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn prim_bad_root_panics() {
        let d = bmst_geom::DistanceMatrix::from_points(&line_points(2), Metric::L1);
        prim_mst(&d, 7);
    }

    #[test]
    fn mst_cost_empty_matrix_is_zero() {
        assert_eq!(mst_cost(&bmst_geom::DistanceMatrix::zeros(0)), 0.0);
    }

    #[test]
    fn disconnected_error_display() {
        let e = GraphError::Disconnected { components: 3 };
        assert!(e.to_string().contains("3 components"));
    }
}
