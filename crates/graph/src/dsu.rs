//! Disjoint-set forest (union-find).

/// A disjoint-set forest with union by rank and path compression.
///
/// The paper implements its partial-tree bookkeeping with `MAKE_SET`,
/// `FIND_SET` and `UNION` operations; this type provides the same interface
/// with the standard near-constant amortised complexity (the paper uses a
/// simpler linked-list scheme with `O(V)` unions — the observable behaviour
/// is identical, only faster here).
///
/// # Examples
///
/// ```
/// use bmst_graph::DisjointSets;
///
/// let mut dsu = DisjointSets::new(4);
/// assert!(!dsu.same_set(0, 1));
/// assert!(dsu.union(0, 1));
/// assert!(dsu.same_set(0, 1));
/// assert!(!dsu.union(1, 0)); // already merged
/// assert_eq!(dsu.num_sets(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<usize>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets `{0}, {1}, ..., {n-1}`
    /// (the paper's `MAKE_SET` loop).
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements across all sets.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` when the forest has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently in the forest.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Appends a fresh singleton set and returns its element index.
    ///
    /// Used by the Steiner construction where Hanan-grid nodes are
    /// materialised lazily.
    pub fn make_set(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        self.rank.push(0);
        self.num_sets += 1;
        id
    }

    /// Representative of the set containing `x` (the paper's `FIND_SET`),
    /// with path compression.
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Returns `true` when `x` and `y` are in the same set.
    pub fn same_set(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Merges the sets containing `x` and `y` (the paper's `UNION`).
    /// Returns `true` if a merge happened, `false` if they were already in
    /// the same set.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        let (hi, lo) = if self.rank[rx] >= self.rank[ry] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[lo] = hi;
        if self.rank[rx] == self.rank[ry] {
            self.rank[hi] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Members of the set containing `x`, in ascending index order.
    ///
    /// The BKRUS `Merge` routine iterates over "each x in t_u and y in t_v";
    /// this is the enumeration it uses. `O(n)` per call.
    pub fn members(&mut self, x: usize) -> Vec<usize> {
        let root = self.find(x);
        (0..self.len()).filter(|&i| self.find(i) == root).collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn singletons_are_disjoint() {
        let mut dsu = DisjointSets::new(5);
        assert_eq!(dsu.num_sets(), 5);
        for i in 0..5 {
            assert_eq!(dsu.find(i), i);
        }
        assert!(!dsu.same_set(0, 4));
    }

    #[test]
    fn union_merges_and_counts() {
        let mut dsu = DisjointSets::new(4);
        assert!(dsu.union(0, 1));
        assert!(dsu.union(2, 3));
        assert_eq!(dsu.num_sets(), 2);
        assert!(dsu.union(1, 3));
        assert_eq!(dsu.num_sets(), 1);
        assert!(dsu.same_set(0, 2));
    }

    #[test]
    fn union_of_same_set_is_noop() {
        let mut dsu = DisjointSets::new(3);
        dsu.union(0, 1);
        assert!(!dsu.union(0, 1));
        assert_eq!(dsu.num_sets(), 2);
    }

    #[test]
    fn make_set_appends_singleton() {
        let mut dsu = DisjointSets::new(2);
        dsu.union(0, 1);
        let id = dsu.make_set();
        assert_eq!(id, 2);
        assert_eq!(dsu.len(), 3);
        assert_eq!(dsu.num_sets(), 2);
        assert!(!dsu.same_set(0, 2));
    }

    #[test]
    fn members_lists_whole_component() {
        let mut dsu = DisjointSets::new(6);
        dsu.union(0, 2);
        dsu.union(2, 4);
        assert_eq!(dsu.members(4), vec![0, 2, 4]);
        assert_eq!(dsu.members(1), vec![1]);
    }

    #[test]
    fn long_chain_compresses() {
        let n = 1000;
        let mut dsu = DisjointSets::new(n);
        for i in 1..n {
            dsu.union(i - 1, i);
        }
        assert_eq!(dsu.num_sets(), 1);
        let root = dsu.find(0);
        for i in 0..n {
            assert_eq!(dsu.find(i), root);
        }
    }

    #[test]
    fn empty_forest() {
        let dsu = DisjointSets::new(0);
        assert!(dsu.is_empty());
        assert_eq!(dsu.num_sets(), 0);
    }
}
