//! Graph substrate for the BMST reproduction.
//!
//! The paper's algorithms operate on the complete graph induced by a net's
//! terminals (spanning-tree constructions) and on sparse routing graphs
//! (Steiner constructions, BRBC's `MST + shortcuts` union). This crate
//! provides the shared machinery:
//!
//! * [`Edge`] and [`complete_edges`] — weighted edges of the complete
//!   terminal graph, with the deterministic `(weight, u, v)` ordering every
//!   Kruskal-style construction in the workspace uses;
//! * [`DisjointSets`] — union-find with path compression (the paper's
//!   `MAKE_SET` / `FIND_SET` / `UNION`);
//! * [`AdjacencyList`] — sparse adjacency representation;
//! * [`kruskal_mst`], [`prim_mst`] — minimum spanning trees (the cost
//!   baseline of every table in the paper);
//! * [`dijkstra`] — single-source shortest paths (the SPT radius baseline and
//!   the final step of BRBC).
//!
//! # Examples
//!
//! ```
//! use bmst_geom::{Metric, Net, Point};
//! use bmst_graph::{complete_edges, kruskal_mst, tree_cost};
//!
//! let net = Net::with_source_first(vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(3.0, 0.0),
//!     Point::new(3.0, 4.0),
//! ])?;
//! let edges = complete_edges(&net.distance_matrix());
//! let mst = kruskal_mst(net.len(), &edges).expect("complete graphs are connected");
//! assert_eq!(tree_cost(&mst), 7.0);
//! # Ok::<(), bmst_geom::GeomError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjacency;
mod dijkstra;
mod dsu;
mod edge;
mod enumerate;
mod mst;

pub use adjacency::AdjacencyList;
pub use dijkstra::{dijkstra, ShortestPaths};
pub use dsu::DisjointSets;
pub use edge::{complete_edges, sort_edges, tree_cost, Edge};
pub use enumerate::{EnumeratedTree, SpanningTreeEnumerator};
pub use mst::{kruskal_mst, mst_cost, prim_mst, prim_mst_with, GraphError};
