//! Offline shim for the slice of `rand` 0.8 this workspace actually uses.
//!
//! The build container has no network access and no vendored registry, so
//! the workspace supplies this path dependency instead of crates.io `rand`.
//! It implements exactly the surface the repo calls:
//!
//! - [`rngs::StdRng`] — a deterministic xoshiro256++ generator
//! - [`SeedableRng::seed_from_u64`] — splitmix64 seed expansion
//! - [`Rng::gen_range`] over half-open [`core::ops::Range`]s of the numeric
//!   types used in the generators (`f64`, `usize`, `u32`, `u64`, `i32`, `i64`)
//!
//! The stream is deterministic for a given seed but is **not** the same
//! stream as upstream `rand`'s `StdRng` (ChaCha12). Golden values derived
//! from seeded instances are therefore tied to this shim; they are
//! regenerated in-repo and stable as long as this file does not change.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`'s ergonomics.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// A range that knows how to sample a uniform value from an [`RngCore`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo reduction: biased by < 2^-64 for the small spans
                // used in this workspace's generators, which is fine for a
                // non-cryptographic instance shim.
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u32, u64, i32, i64);

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Statistically solid for instance generation; not
    /// cryptographically secure.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn f64_range_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn int_range_respected_and_covers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let x = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
            seen[(x - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in 3..9 should appear");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }
}
