//! Offline shim for the slice of `criterion` 0.5 this workspace's benches
//! use.
//!
//! The build container has no network access, so the workspace supplies
//! this path dependency instead of crates.io `criterion`. Bench sources
//! compile unchanged; running them performs a small fixed number of timed
//! iterations per benchmark and prints `name: median_ns` lines — enough to
//! eyeball trends and keep the benches honest (they execute the real
//! algorithm code), without upstream criterion's statistics, HTML reports,
//! or baseline comparisons.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// How to batch per-iteration setup in [`Bencher::iter_batched`].
/// Variants mirror upstream; the shim treats them identically.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// Identifier for a parameterised benchmark, mirroring
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Per-benchmark timing driver handed to the measurement closures.
pub struct Bencher {
    samples: u32,
    median_ns: u128,
}

impl Bencher {
    /// Time `routine` for a fixed number of samples and record the median.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let mut times = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed().as_nanos());
        }
        times.sort_unstable();
        self.median_ns = times[times.len() / 2];
    }

    /// Time `routine` with a fresh `setup()` value per sample.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut times = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed().as_nanos());
        }
        times.sort_unstable();
        self.median_ns = times[times.len() / 2];
    }
}

/// Top-level benchmark manager, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

const DEFAULT_SAMPLES: u32 = 10;

fn run_one(label: &str, samples: u32, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: samples.max(1),
        median_ns: 0,
    };
    f(&mut b);
    println!("{label}: {} ns/iter (median of {})", b.median_ns, b.samples);
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, DEFAULT_SAMPLES, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: DEFAULT_SAMPLES,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u32,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Upstream requires >= 10; the shim just clamps to >= 1.
        self.samples = (n as u32).max(1);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.samples, f);
        self
    }

    /// Run a benchmark that borrows a shared input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// Close the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Declare a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut group = c.benchmark_group("group");
        group.sample_size(12);
        group.bench_with_input(BenchmarkId::new("sum_to", 100u32), &100u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u32).sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn shim_api_drives_benches() {
        benches();
    }
}
