//! Offline shim for the slice of `proptest` 1.x this workspace uses.
//!
//! The build container has no network access, so the workspace supplies
//! this path dependency instead of crates.io `proptest`. It keeps the same
//! surface syntax — the [`proptest!`] macro with an optional
//! `#![proptest_config(..)]` header, [`Strategy`] combinators
//! (`prop_map`, `prop_filter`, `prop_filter_map`, `prop_flat_map`),
//! [`collection::vec`], [`prop_oneof!`], [`Just`], `prop_assert!`,
//! `prop_assert_eq!` — but generates cases from a fixed-seed deterministic
//! RNG and performs **no shrinking**: a failing case panics with the
//! assertion message directly. That trade keeps the property tests
//! meaningful (they still sweep hundreds of random structures) while
//! remaining buildable offline.

#![forbid(unsafe_code)]

use core::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Configuration for a [`proptest!`] block, mirroring
/// `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
    /// Upper bound on generate-then-reject attempts, as a multiple of
    /// `cases`, before the property errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a property case did not pass, mirroring
/// `proptest::test_runner::TestCaseError`.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected (e.g. by `prop_assume!`); it does not count
    /// toward the accepted-case total.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

/// Result type of a property body, mirroring
/// `proptest::test_runner::TestCaseResult`.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random values of type `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// directly produces a value (or `None` when a filter rejects the draw).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value, or `None` if this draw was rejected by a filter.
    fn generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `f` returns `true`.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Map-and-filter in one step: `None` rejects the draw.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Generate a value, then generate from the strategy it maps to.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T>(Box<dyn ObjectSafeStrategy<Value = T>>);

/// Object-safe core of [`Strategy`] used by [`BoxedStrategy`].
trait ObjectSafeStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut StdRng) -> Option<Self::Value>;
}

impl<S: Strategy> ObjectSafeStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut StdRng) -> Option<S::Value> {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> Option<T> {
        self.0.generate_dyn(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// Strategy produced by [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> Option<T::Value> {
        let outer = self.inner.generate(rng)?;
        (self.f)(outer).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// String-literal strategies: upstream proptest interprets `&str` values
/// as regexes. The shim supports the shapes this workspace uses — a
/// sequence of atoms, each a character class `[...]` or a literal
/// character, with an optional bounded quantifier `{lo,hi}` or `{n}`.
/// Classes hold literal characters, `a-z` ranges, and the escapes `\n`,
/// `\t`, `\r`, `\\`. Anything fancier (alternation, `*`/`+`, groups)
/// panics loudly rather than silently mis-generating.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> Option<String> {
        let atoms = parse_pattern(self).unwrap_or_else(|| {
            panic!(
                "proptest shim: unsupported string strategy pattern {self:?}; \
                 only sequences of [class]/literal atoms with {{lo,hi}} \
                 quantifiers are implemented"
            )
        });
        let mut out = String::new();
        for atom in &atoms {
            let len = if atom.lo == atom.hi {
                atom.lo
            } else {
                rng.gen_range(atom.lo..atom.hi + 1)
            };
            for _ in 0..len {
                out.push(atom.alphabet[rng.gen_range(0usize..atom.alphabet.len())]);
            }
        }
        Some(out)
    }
}

/// One pattern atom: an alphabet repeated between `lo` and `hi` times.
struct PatternAtom {
    alphabet: Vec<char>,
    lo: usize,
    hi: usize,
}

/// Parse the supported regex subset; `None` on anything unsupported.
fn parse_pattern(pattern: &str) -> Option<Vec<PatternAtom>> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let alphabet = match c {
            '[' => {
                let mut class = String::new();
                for inner in chars.by_ref() {
                    if inner == ']' {
                        break;
                    }
                    class.push(inner);
                }
                parse_class(&class)?
            }
            // Regex features the shim deliberately does not implement.
            '(' | ')' | '|' | '*' | '+' | '?' | '.' => return None,
            '\\' => vec![unescape(chars.next()?)],
            literal => vec![literal],
        };
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for inner in chars.by_ref() {
                if inner == '}' {
                    break;
                }
                spec.push(inner);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
                None => {
                    let n = spec.trim().parse().ok()?;
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        if lo > hi || alphabet.is_empty() {
            return None;
        }
        atoms.push(PatternAtom { alphabet, lo, hi });
    }
    Some(atoms)
}

/// Expand a character class body (between `[` and `]`) into its alphabet.
fn parse_class(class: &str) -> Option<Vec<char>> {
    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        let c = if c == '\\' {
            unescape(chars.next()?)
        } else {
            c
        };
        if chars.peek() == Some(&'-') {
            let mut look = chars.clone();
            look.next(); // consume '-'
            if let Some(end) = look.next() {
                // `a-z` range (a trailing '-' is a literal).
                chars = look;
                for code in (c as u32)..=(end as u32) {
                    alphabet.push(char::from_u32(code)?);
                }
                continue;
            }
        }
        alphabet.push(c);
    }
    Some(alphabet)
}

/// Resolve a backslash escape to its character.
fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(usize, u32, u64, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                let ($($name,)*) = self;
                Some(($($name.generate(rng)?,)*))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Rng, SizeRange, StdRng, Strategy};

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
            let len = if self.size.lo >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

/// Length specification for [`collection::vec`]: built from `usize`,
/// `Range<usize>`, or `RangeInclusive<usize>`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::{Rng, StdRng, Strategy};

    /// Uniform `true`/`false`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy instance.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> Option<bool> {
            Some(rng.gen_range(0u32..2) == 1)
        }
    }
}

/// Numeric strategies, mirroring the subset of `proptest::num` used here.
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use super::super::{Rng, StdRng, Strategy};

        /// Normal (finite, non-NaN, non-subnormal magnitude) `f64` values,
        /// mirroring `proptest::num::f64::NORMAL`'s contract of producing
        /// well-behaved floats across many magnitudes.
        #[derive(Clone, Copy, Debug)]
        pub struct Normal;

        /// The canonical normal-float strategy instance.
        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f64;
            fn generate(&self, rng: &mut StdRng) -> Option<f64> {
                // Sign * mantissa in [1, 2) * 2^exp with exponent swept over
                // a wide but safely-finite band.
                let sign = if rng.gen_range(0u32..2) == 1 {
                    -1.0
                } else {
                    1.0
                };
                let mantissa = rng.gen_range(1.0..2.0);
                let exp = rng.gen_range(-64i32..64);
                Some(sign * mantissa * (exp as f64).exp2())
            }
        }
    }
}

/// Union of same-typed strategies with uniform choice, the engine behind
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union from boxed alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! requires at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> Option<T> {
        let idx = rng.gen_range(0usize..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Choose uniformly among several same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert a condition inside a property; panics (fails the case) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests.
///
/// Supports the same surface syntax as upstream `proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0i32..100, v in proptest::collection::vec(0u32..9, 1..5)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(&config, stringify!($name), |__proptest_rng| {
                $(
                    let $pat = match $crate::Strategy::generate(&($strat), __proptest_rng) {
                        Some(v) => v,
                        None => return false,
                    };
                )+
                let __proptest_result: $crate::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                match __proptest_result {
                    Ok(()) => true,
                    Err($crate::TestCaseError::Reject(_)) => false,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed: {msg}", stringify!($name))
                    }
                }
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Drive one property: call `case` until `config.cases` draws are accepted
/// (return value `true`), with a global reject budget. Used by the
/// [`proptest!`] expansion; not intended to be called directly.
pub fn run_property(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut StdRng) -> bool,
) {
    // Stable per-property seed: deterministic across runs and between
    // properties of the same file, like a fixed PROPTEST_RNG_SEED.
    let seed = name.bytes().fold(0xBadD_EC0D_u64, |h, b| {
        h.wrapping_mul(0x100_0000_01B3).wrapping_add(u64::from(b))
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= config.max_global_rejects,
            "property `{name}`: too many rejected draws ({attempts}); \
             filter is too strict"
        );
        if case(&mut rng) {
            accepted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::prelude::*;

    fn small_even() -> impl Strategy<Value = i32> {
        (0i32..100).prop_filter("even", |x| x % 2 == 0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn filters_apply(x in small_even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0usize..10, 0.0..1.0), 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            for (i, x) in &v {
                prop_assert!(*i < 10);
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn string_class_repetition(s in "[ -~\n]{0,20}") {
            prop_assert!(s.len() <= 20);
            prop_assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }

        #[test]
        fn string_identifier_shape(s in "[a-z][a-z0-9_]{0,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 9);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }

        #[test]
        fn oneof_and_flat_map(x in prop_oneof![Just(1i32), Just(2), Just(3)], n in (1usize..4).prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..5, n)))) {
            prop_assert!((1..=3).contains(&x));
            let (len, v) = n;
            prop_assert_eq!(v.len(), len);
        }
    }

    #[test]
    #[should_panic(expected = "too many rejected draws")]
    fn impossible_filter_errors_out() {
        let config = ProptestConfig {
            cases: 1,
            max_global_rejects: 10,
        };
        super::run_property(&config, "impossible", |_| false);
    }
}
