//! Integration tests for the global recorder handle: accumulation, span
//! nesting, and concurrent recording.
#![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic

use std::sync::Arc;
use std::thread;

use bmst_obs::{Field, SummaryRecorder};

#[test]
fn counters_and_histograms_accumulate_through_the_global_handle() {
    let rec = Arc::new(SummaryRecorder::new());
    {
        let _guard = bmst_obs::scoped(rec.clone());
        for i in 0..10u64 {
            bmst_obs::counter("test.count", 1);
            bmst_obs::histogram("test.hist", i);
        }
        bmst_obs::event("test.event", &[("flag", Field::from(true))]);
    }
    assert_eq!(rec.counter("test.count"), 10);
    assert_eq!(rec.event_count("test.event"), 1);
    let snap = rec.snapshot();
    let hist = snap.histograms.get("test.hist").unwrap();
    assert_eq!(hist.count, 10);
    assert_eq!(hist.sum, 45);
    assert_eq!(hist.max, 9);
}

#[test]
fn span_nesting_produces_parent_child_paths_with_consistent_timing() {
    let rec = Arc::new(SummaryRecorder::new());
    {
        let _guard = bmst_obs::scoped(rec.clone());
        {
            let _outer = bmst_obs::span("outer");
            for _ in 0..3 {
                let _inner = bmst_obs::span("inner");
                std::hint::black_box(());
            }
        }
        // A fresh root span after the nest: stack unwound correctly.
        let _root = bmst_obs::span("other");
    }
    let outer = rec.span_stats("outer").unwrap();
    let inner = rec.span_stats("outer/inner").unwrap();
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 3);
    // The parent encloses all child executions, so its wall-clock total
    // must be at least the children's.
    assert!(outer.total_nanos >= inner.total_nanos);
    assert!(
        rec.span_stats("inner").is_none(),
        "child must not appear as a root"
    );
    assert_eq!(rec.span_stats("other").map(|s| s.count), Some(1));
}

#[test]
fn concurrent_recording_is_race_free() {
    let rec = Arc::new(SummaryRecorder::new());
    {
        let _guard = bmst_obs::scoped(rec.clone());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                thread::spawn(|| {
                    for i in 0..1000u64 {
                        bmst_obs::counter("mt.count", 1);
                        bmst_obs::histogram("mt.hist", i % 16);
                        let _span = bmst_obs::span("mt");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
    assert_eq!(rec.counter("mt.count"), 8000);
    let snap = rec.snapshot();
    assert_eq!(snap.histograms.get("mt.hist").unwrap().count, 8000);
    assert_eq!(rec.span_stats("mt").unwrap().count, 8000);
}

#[test]
fn scoped_installs_are_serialized_and_isolated() {
    // Two sequential scopes: the second must not see the first's data, and
    // data recorded outside any scope must vanish.
    let first = Arc::new(SummaryRecorder::new());
    {
        let _guard = bmst_obs::scoped(first.clone());
        bmst_obs::counter("iso.count", 1);
    }
    bmst_obs::counter("iso.count", 100); // dropped: nothing installed
    let second = Arc::new(SummaryRecorder::new());
    {
        let _guard = bmst_obs::scoped(second.clone());
        bmst_obs::counter("iso.count", 2);
    }
    assert_eq!(first.counter("iso.count"), 1);
    assert_eq!(second.counter("iso.count"), 2);
}
