//! End-to-end test of the counting allocator: this test binary installs
//! `CountingAlloc` as its global allocator, so spans must report real
//! allocation deltas through `Recorder::record_span_alloc`.
#![cfg(feature = "alloc")]
#![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic

use std::sync::Arc;

use bmst_obs::alloc::{snapshot, CountingAlloc};
use bmst_obs::SpanTreeRecorder;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn snapshots_count_real_allocations() {
    let before = snapshot();
    let v: Vec<u8> = vec![0; 4096];
    let after = snapshot();
    let delta = after.delta_since(before);
    assert!(delta.allocs >= 1, "vec allocation not counted: {delta:?}");
    assert!(delta.bytes >= 4096, "vec bytes not counted: {delta:?}");
    drop(v);
}

#[test]
fn spans_report_allocation_columns() {
    let recorder = Arc::new(SpanTreeRecorder::new());
    {
        let _guard = bmst_obs::scoped(recorder.clone());
        let _outer = bmst_obs::span("outer");
        {
            let _inner = bmst_obs::span("inner");
            let buf: Vec<u64> = vec![7; 1000];
            assert_eq!(buf.len(), 1000);
        }
        // Parent-only allocation after the child closed.
        let s: String = "x".repeat(256);
        assert_eq!(s.len(), 256);
    }
    let inner = recorder.node("outer/inner").expect("inner recorded");
    assert!(inner.allocs >= 1, "inner span saw no allocations");
    assert!(
        inner.alloc_bytes >= 8000,
        "inner bytes too small: {inner:?}"
    );
    let outer = recorder.node("outer").expect("outer recorded");
    // Nested deltas are cumulative: the parent includes the child's bytes
    // plus its own post-child allocation.
    assert!(outer.alloc_bytes >= inner.alloc_bytes + 256);
    // And the profile table grows allocation columns.
    let table = recorder.render_table();
    assert!(table.contains("allocs / KiB"), "{table}");
}
