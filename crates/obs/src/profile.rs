//! Span-tree profiling recorder.
//!
//! [`SpanTreeRecorder`] aggregates completed spans into a tree keyed by
//! their slash-joined nesting paths, tracking per path: call count,
//! cumulative wall time, the longest single completion, a log-scale
//! duration histogram, and — when the `alloc` feature counts — allocation
//! deltas. Two renderers ship with it:
//!
//! * [`SpanTreeRecorder::render_table`] — an indented text table with
//!   cumulative/self/count columns (self time = cumulative minus the
//!   direct children's cumulative), the shape behind the CLI's
//!   `--profile`;
//! * [`SpanTreeRecorder::render_folded`] — collapsed-stack lines
//!   (`a;b;c <self-micros>`), the input format of flamegraph tooling,
//!   behind the CLI's `--profile-folded <path>`.
//!
//! # Determinism under `--jobs N`
//!
//! The parallel router tags per-worker spans `router.net.w<k>`; which
//! worker routes which net is scheduling-dependent, so raw per-worker
//! paths are not reproducible. The recorder therefore normalises every
//! path segment of the shape `<base>.w<digits>` down to `<base>` at
//! record time: a serial run and a `--jobs 4` run of the same netlist
//! produce the same path set with the same per-path counts (timings
//! still differ — they are wall-clock), and the `BTreeMap` storage keeps
//! path ordering stable.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::recorder::{Field, Recorder};
use crate::summary::{Histogram, SummaryRecorder};

/// Aggregated statistics for one span path in the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// How many times a span completed under this exact path.
    pub count: u64,
    /// Total wall-clock nanoseconds across completions (cumulative: time
    /// spent in child spans is included).
    pub cum_nanos: u64,
    /// Longest single completion in nanoseconds.
    pub max_nanos: u64,
    /// Log-scale histogram of per-completion durations (nanoseconds).
    pub durations: Histogram,
    /// Heap allocations observed across completions (0 unless the process
    /// counts allocations — see `bmst_obs::alloc`).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

impl SpanNode {
    fn new() -> Self {
        SpanNode {
            count: 0,
            cum_nanos: 0,
            max_nanos: 0,
            durations: Histogram::new(),
            allocs: 0,
            alloc_bytes: 0,
        }
    }
}

/// Aggregates nested spans into a path tree; see the module docs.
///
/// Counters, histograms and events are delegated to an embedded
/// [`SummaryRecorder`], so a `--profile` report keeps showing them
/// alongside the span tree.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use bmst_obs::SpanTreeRecorder;
///
/// let recorder = Arc::new(SpanTreeRecorder::new());
/// {
///     let _guard = bmst_obs::scoped(recorder.clone());
///     let _outer = bmst_obs::span("outer");
///     let _inner = bmst_obs::span("inner");
/// }
/// let folded = recorder.render_folded();
/// assert!(folded.contains("outer;inner"));
/// ```
#[derive(Default)]
pub struct SpanTreeRecorder {
    nodes: Mutex<BTreeMap<String, SpanNode>>,
    rest: SummaryRecorder,
}

/// Collapses a `<base>.w<digits>` path segment to `<base>` (the parallel
/// router's per-worker span tag), leaving every other segment untouched.
fn normalize_segment(seg: &str) -> &str {
    if let Some(dot_w) = seg.rfind(".w") {
        let digits = &seg[dot_w + 2..];
        if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
            return &seg[..dot_w];
        }
    }
    seg
}

/// Normalises a full slash-joined path segment by segment.
fn normalize_path(path: &str) -> String {
    let mut out = String::with_capacity(path.len());
    for (i, seg) in path.split('/').enumerate() {
        if i > 0 {
            out.push('/');
        }
        out.push_str(normalize_segment(seg));
    }
    out
}

/// Depth of a slash-joined path (`a` = 1, `a/b` = 2).
fn depth(path: &str) -> usize {
    path.split('/').count()
}

/// `true` when `child` is a *direct* child path of `parent`.
fn is_direct_child(parent: &str, child: &str) -> bool {
    child.len() > parent.len()
        && child.as_bytes()[parent.len()] == b'/'
        && child.starts_with(parent)
        && !child[parent.len() + 1..].contains('/')
}

fn nanos_to_ms(nanos: u64) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    {
        // lint: allow(no-as-cast) — u64→f64 for display only
        nanos as f64 / 1.0e6
    }
}

impl SpanTreeRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        SpanTreeRecorder::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, SpanNode>> {
        self.nodes.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The aggregated node for a (normalised) span path, if any span
    /// completed under it.
    pub fn node(&self, path: &str) -> Option<SpanNode> {
        self.lock().get(path).cloned()
    }

    /// Every (normalised path, node) pair, in stable lexicographic order.
    pub fn nodes(&self) -> Vec<(String, SpanNode)> {
        self.lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// The per-path counts alone, in stable order — the deterministic
    /// signature used by the serial-vs-parallel profile parity test.
    pub fn path_counts(&self) -> Vec<(String, u64)> {
        self.lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.count))
            .collect()
    }

    /// The embedded recorder aggregating counters/histograms/events.
    pub fn summary(&self) -> &SummaryRecorder {
        &self.rest
    }

    /// Self nanoseconds of `path` within `nodes`: cumulative minus the
    /// direct children's cumulative, clamped at zero (clock skew between
    /// parent and child measurements can make the difference negative by
    /// nanoseconds).
    fn self_nanos(nodes: &BTreeMap<String, SpanNode>, path: &str, node: &SpanNode) -> u64 {
        let children: u64 = nodes
            .iter()
            .filter(|(p, _)| is_direct_child(path, p))
            .map(|(_, n)| n.cum_nanos)
            .fold(0, u64::saturating_add);
        node.cum_nanos.saturating_sub(children)
    }

    /// Renders the span tree as an indented text table:
    ///
    /// ```text
    /// span tree (cum ms / self ms / count / max ms):
    ///   router.net: 12.801 / 0.310 / 24 / 1.002
    ///     bkrus: 12.491 / 9.107 / 24 / 0.967
    ///       context.sorted_edges: 3.384 / 2.881 / 24 / 0.141
    /// ```
    ///
    /// Allocation columns (`allocs / KiB`) are appended per row when any
    /// node observed a nonzero allocation delta.
    pub fn render_table(&self) -> String {
        let nodes = self.lock();
        let mut out = String::new();
        if nodes.is_empty() {
            return out;
        }
        let any_alloc = nodes.values().any(|n| n.allocs > 0);
        let alloc_header = if any_alloc { " / allocs / KiB" } else { "" };
        let _ = writeln!(
            out,
            "span tree (cum ms / self ms / count / max ms{alloc_header}):"
        );
        for (path, node) in nodes.iter() {
            let indent = "  ".repeat(depth(path));
            let label = path.rsplit('/').next().unwrap_or(path);
            let self_ns = Self::self_nanos(&nodes, path, node);
            let _ = write!(
                out,
                "{indent}{label}: {:.3} / {:.3} / {} / {:.3}",
                nanos_to_ms(node.cum_nanos),
                nanos_to_ms(self_ns),
                node.count,
                nanos_to_ms(node.max_nanos),
            );
            if any_alloc {
                #[allow(clippy::cast_precision_loss)]
                // lint: allow(no-as-cast) — u64→f64 for display only
                let kib = node.alloc_bytes as f64 / 1024.0;
                let _ = write!(out, " / {} / {kib:.1}", node.allocs);
            }
            out.push('\n');
        }
        drop(nodes);
        out
    }

    /// Renders collapsed-stack lines — one `seg;seg;... <self-micros>`
    /// per path, in stable path order — directly consumable by standard
    /// flamegraph tooling (`flamegraph.pl`, `inferno-flamegraph`).
    ///
    /// The folded value is *self* time in integer microseconds; paths
    /// whose self time rounds to zero microseconds are still emitted
    /// (value 0) so the tree shape is complete.
    pub fn render_folded(&self) -> String {
        let nodes = self.lock();
        let mut out = String::new();
        for (path, node) in nodes.iter() {
            let self_us = Self::self_nanos(&nodes, path, node) / 1_000;
            let _ = writeln!(out, "{} {self_us}", path.replace('/', ";"));
        }
        drop(nodes);
        out
    }

    /// Renders the full profile: the span tree table followed by the
    /// embedded summary's counters/histograms/events sections.
    pub fn render_text(&self) -> String {
        let mut out = self.render_table();
        out.push_str(&self.rest.render_text());
        out
    }
}

impl std::fmt::Debug for SpanTreeRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanTreeRecorder")
            .field("paths", &self.lock().len())
            .finish_non_exhaustive()
    }
}

impl Recorder for SpanTreeRecorder {
    fn add_counter(&self, name: &str, delta: u64) {
        self.rest.add_counter(name, delta);
    }

    fn record_histogram(&self, name: &str, value: u64) {
        self.rest.record_histogram(name, value);
    }

    fn record_span(&self, path: &str, nanos: u64) {
        let path = normalize_path(path);
        let mut nodes = self.lock();
        let node = nodes.entry(path).or_insert_with(SpanNode::new);
        node.count += 1;
        node.cum_nanos = node.cum_nanos.saturating_add(nanos);
        node.max_nanos = node.max_nanos.max(nanos);
        node.durations.observe(nanos);
    }

    fn record_event(&self, name: &str, fields: &[(&str, Field)]) {
        self.rest.record_event(name, fields);
    }

    fn record_span_alloc(&self, path: &str, allocs: u64, bytes: u64) {
        let path = normalize_path(path);
        let mut nodes = self.lock();
        let node = nodes.entry(path).or_insert_with(SpanNode::new);
        node.allocs = node.allocs.saturating_add(allocs);
        node.alloc_bytes = node.alloc_bytes.saturating_add(bytes);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn worker_segments_normalise() {
        assert_eq!(normalize_segment("router.net.w3"), "router.net");
        assert_eq!(normalize_segment("router.net.w12"), "router.net");
        assert_eq!(normalize_segment("router.net"), "router.net");
        assert_eq!(normalize_segment("router.net.worker"), "router.net.worker");
        assert_eq!(normalize_segment("w3"), "w3");
        assert_eq!(normalize_segment("a.w"), "a.w");
        assert_eq!(normalize_path("router.net.w7/bkrus"), "router.net/bkrus");
        assert_eq!(normalize_path("a/b.w1/c.w22"), "a/b/c");
    }

    #[test]
    fn spans_aggregate_into_tree_nodes() {
        let r = SpanTreeRecorder::new();
        r.record_span("a/b", 300);
        r.record_span("a/b", 500);
        r.record_span("a", 1000);
        let b = r.node("a/b").unwrap();
        assert_eq!(b.count, 2);
        assert_eq!(b.cum_nanos, 800);
        assert_eq!(b.max_nanos, 500);
        assert_eq!(b.durations.count, 2);
        let a = r.node("a").unwrap();
        assert_eq!(a.count, 1);
        // Self time of the parent excludes the direct child's cumulative.
        let nodes = r.lock();
        assert_eq!(SpanTreeRecorder::self_nanos(&nodes, "a", &a), 200);
    }

    #[test]
    fn self_time_only_subtracts_direct_children() {
        let r = SpanTreeRecorder::new();
        r.record_span("a", 1000);
        r.record_span("a/b", 600);
        r.record_span("a/b/c", 500);
        let nodes = r.lock();
        // a's self = 1000 - 600 (b), NOT - 500 (grandchild c).
        assert_eq!(
            SpanTreeRecorder::self_nanos(&nodes, "a", nodes.get("a").unwrap()),
            400
        );
        // Sibling prefix `ab` must not count as a child of `a`.
        drop(nodes);
        r.record_span("ab", 10_000);
        let nodes = r.lock();
        assert_eq!(
            SpanTreeRecorder::self_nanos(&nodes, "a", nodes.get("a").unwrap()),
            400
        );
    }

    #[test]
    fn negative_self_time_clamps_to_zero() {
        let r = SpanTreeRecorder::new();
        r.record_span("a", 100);
        r.record_span("a/b", 300); // measured longer than its parent
        let nodes = r.lock();
        assert_eq!(
            SpanTreeRecorder::self_nanos(&nodes, "a", nodes.get("a").unwrap()),
            0
        );
    }

    #[test]
    fn table_renders_indented_rows() {
        let r = SpanTreeRecorder::new();
        r.record_span("router.net/bkrus", 2_000_000);
        r.record_span("router.net", 3_000_000);
        let table = r.render_table();
        assert!(table.starts_with("span tree"), "{table}");
        assert!(
            table.contains("  router.net: 3.000 / 1.000 / 1 / 3.000"),
            "{table}"
        );
        assert!(
            table.contains("    bkrus: 2.000 / 2.000 / 1 / 2.000"),
            "{table}"
        );
        // No alloc columns unless something counted.
        assert!(!table.contains("allocs"), "{table}");
    }

    #[test]
    fn alloc_columns_appear_when_counted() {
        let r = SpanTreeRecorder::new();
        r.record_span("a", 1_000_000);
        r.record_span_alloc("a", 7, 2048);
        let table = r.render_table();
        assert!(table.contains("allocs / KiB"), "{table}");
        assert!(table.contains("/ 7 / 2.0"), "{table}");
        let a = r.node("a").unwrap();
        assert_eq!(a.allocs, 7);
        assert_eq!(a.alloc_bytes, 2048);
    }

    #[test]
    fn folded_lines_use_semicolons_and_self_micros() {
        let r = SpanTreeRecorder::new();
        r.record_span("a/b/c", 2_500_000);
        r.record_span("a/b", 4_000_000);
        r.record_span("a", 10_000_000);
        let folded = r.render_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, vec!["a 6000", "a;b 1500", "a;b;c 2500"]);
    }

    #[test]
    fn parallel_worker_paths_merge_deterministically() {
        // Two recorders fed the same logical spans under different worker
        // tags and arrival orders must agree on paths and counts.
        let serial = SpanTreeRecorder::new();
        for _ in 0..3 {
            serial.record_span("router.net/bkrus", 500);
            serial.record_span("router.net", 700);
        }
        let parallel = SpanTreeRecorder::new();
        parallel.record_span("router.net.w1/bkrus", 900);
        parallel.record_span("router.net.w1", 950);
        parallel.record_span("router.net.w0/bkrus", 450);
        parallel.record_span("router.net.w0", 500);
        parallel.record_span("router.net.w0/bkrus", 100);
        parallel.record_span("router.net.w0", 120);
        assert_eq!(serial.path_counts(), parallel.path_counts());
    }

    #[test]
    fn counters_and_events_flow_to_the_embedded_summary() {
        let r = SpanTreeRecorder::new();
        r.add_counter("bkrus.edges_scanned", 5);
        r.record_histogram("forest.merge.cross_pairs", 4);
        r.record_event("audit.violation", &[]);
        r.record_span("bkrus", 1_000);
        assert_eq!(r.summary().counter("bkrus.edges_scanned"), 5);
        assert_eq!(r.summary().event_count("audit.violation"), 1);
        let text = r.render_text();
        assert!(text.contains("span tree"), "{text}");
        assert!(text.contains("bkrus.edges_scanned"), "{text}");
        assert!(text.contains("forest.merge.cross_pairs"), "{text}");
        // The flat spans section must not duplicate the tree.
        assert!(!text.contains("spans (total ms"), "{text}");
    }

    #[test]
    fn empty_recorder_renders_empty() {
        let r = SpanTreeRecorder::new();
        assert_eq!(r.render_table(), "");
        assert_eq!(r.render_folded(), "");
        assert!(r.node("missing").is_none());
        assert!(r.nodes().is_empty());
    }
}
