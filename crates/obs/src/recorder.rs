//! The [`Recorder`] trait and trivial implementations.

use std::sync::Arc;

use crate::json::Json;

/// A typed field value attached to an [`event`](crate::event).
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// An unsigned integer (counts, node ids).
    U64(u64),
    /// A floating-point measurement (lengths, ratios).
    F64(f64),
    /// A short string (kinds, names).
    Str(String),
    /// A boolean flag.
    Bool(bool),
}

impl Field {
    /// Converts the field into its JSON representation.
    pub fn to_json(&self) -> Json {
        match self {
            Field::U64(v) => Json::from_u64(*v),
            Field::F64(v) => Json::Num(*v),
            Field::Str(s) => Json::Str(s.clone()),
            Field::Bool(b) => Json::Bool(*b),
        }
    }
}

impl From<u64> for Field {
    fn from(v: u64) -> Self {
        Field::U64(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Self {
        Field::U64(u64::try_from(v).unwrap_or(u64::MAX))
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Self {
        Field::F64(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::Str(v.to_owned())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Self {
        Field::Str(v)
    }
}

impl From<bool> for Field {
    fn from(v: bool) -> Self {
        Field::Bool(v)
    }
}

/// Sink for instrumentation data. Implementations must be thread-safe: the
/// algorithm crates record from whatever thread they run on.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the named monotonic counter.
    fn add_counter(&self, name: &str, delta: u64);
    /// Records one `value` observation into the named histogram.
    fn record_histogram(&self, name: &str, value: u64);
    /// Records a completed span: `path` is the slash-joined nesting path
    /// (e.g. `bkh2/bkrus`), `nanos` its wall-clock duration.
    fn record_span(&self, path: &str, nanos: u64);
    /// Records a structured event.
    fn record_event(&self, name: &str, fields: &[(&str, Field)]);
    /// Records the allocation delta observed over a completed span:
    /// `allocs` heap allocations totalling `bytes` requested bytes on the
    /// span's thread (cumulative — nested spans count in their parents).
    ///
    /// Only emitted when the `alloc` feature is on *and* the process runs
    /// under [`crate::alloc::CountingAlloc`]; the default implementation
    /// discards, so existing recorders are unaffected.
    fn record_span_alloc(&self, path: &str, allocs: u64, bytes: u64) {
        let _ = (path, allocs, bytes);
    }
}

/// Discards everything. Installing it is equivalent to (but measurably more
/// expensive than) installing nothing; it exists as the explicit baseline
/// for overhead and output-equivalence tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn add_counter(&self, _name: &str, _delta: u64) {}
    fn record_histogram(&self, _name: &str, _value: u64) {}
    fn record_span(&self, _path: &str, _nanos: u64) {}
    fn record_event(&self, _name: &str, _fields: &[(&str, Field)]) {}
}

/// Fans every record out to several recorders (e.g. a JSON-lines trace file
/// *and* an in-memory summary in the same run).
pub struct MultiRecorder {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl MultiRecorder {
    /// Builds a fan-out over `sinks`, invoked in order.
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Self {
        MultiRecorder { sinks }
    }
}

impl std::fmt::Debug for MultiRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiRecorder")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl Recorder for MultiRecorder {
    fn add_counter(&self, name: &str, delta: u64) {
        for s in &self.sinks {
            s.add_counter(name, delta);
        }
    }

    fn record_histogram(&self, name: &str, value: u64) {
        for s in &self.sinks {
            s.record_histogram(name, value);
        }
    }

    fn record_span(&self, path: &str, nanos: u64) {
        for s in &self.sinks {
            s.record_span(path, nanos);
        }
    }

    fn record_event(&self, name: &str, fields: &[(&str, Field)]) {
        for s in &self.sinks {
            s.record_event(name, fields);
        }
    }

    fn record_span_alloc(&self, path: &str, allocs: u64, bytes: u64) {
        for s in &self.sinks {
            s.record_span_alloc(path, allocs, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::SummaryRecorder;

    #[test]
    fn field_conversions() {
        assert_eq!(Field::from(3usize), Field::U64(3));
        assert_eq!(Field::from(2.5), Field::F64(2.5));
        assert_eq!(Field::from("x"), Field::Str("x".into()));
        assert_eq!(Field::from(true), Field::Bool(true));
    }

    #[test]
    fn multi_recorder_fans_out() {
        let a = Arc::new(SummaryRecorder::new());
        let b = Arc::new(SummaryRecorder::new());
        let multi = MultiRecorder::new(vec![a.clone(), b.clone()]);
        multi.add_counter("c", 2);
        multi.record_span("s", 10);
        assert_eq!(a.counter("c"), 2);
        assert_eq!(b.counter("c"), 2);
        assert_eq!(a.span_nanos("s"), 10);
    }

    #[test]
    fn noop_discards() {
        let n = NoopRecorder;
        n.add_counter("c", 1);
        n.record_histogram("h", 1);
        n.record_span("s", 1);
        n.record_event("e", &[]);
    }
}
