//! JSON-lines trace recorder.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, PoisonError};

use crate::json::Json;
use crate::recorder::{Field, Recorder};
use crate::summary::SummaryRecorder;

/// Streams spans and events as JSON lines while aggregating counters and
/// histograms in memory; the aggregates are dumped as final lines by
/// [`finish`](JsonLinesRecorder::finish) (or on drop).
///
/// Line shapes:
///
/// ```text
/// {"t":"span","path":"bkh2/bkrus","ns":123456}
/// {"t":"event","name":"audit.violation","kind":"ParentCycle",...}
/// {"t":"counters","counters":{...}}          // once, at finish
/// {"t":"histograms","histograms":{...}}      // once, at finish
/// ```
///
/// I/O errors are swallowed after the first (the recorder goes quiet) and
/// reported by [`finish`](JsonLinesRecorder::finish).
pub struct JsonLinesRecorder {
    out: Mutex<Sink>,
    agg: SummaryRecorder,
}

struct Sink {
    writer: Option<Box<dyn Write + Send>>,
    error: Option<std::io::Error>,
    finished: bool,
}

impl JsonLinesRecorder {
    /// Creates (truncating) `path` and writes the trace there.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(Box::new(BufWriter::new(file))))
    }

    /// Writes the trace to an arbitrary sink (e.g. an in-memory buffer in
    /// tests).
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonLinesRecorder {
            out: Mutex::new(Sink {
                writer: Some(writer),
                error: None,
                finished: false,
            }),
            agg: SummaryRecorder::new(),
        }
    }

    fn write_line(&self, json: &Json) {
        let mut sink = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        if sink.error.is_some() {
            return;
        }
        if let Some(w) = sink.writer.as_mut() {
            if let Err(e) = writeln!(w, "{json}") {
                sink.error = Some(e);
                sink.writer = None;
            }
        }
    }

    /// Dumps the aggregated counters and histograms as final lines, flushes,
    /// and returns the first I/O error hit during the trace (if any).
    /// Idempotent; also invoked by `Drop`.
    pub fn finish(&self) -> std::io::Result<()> {
        {
            let sink = self.out.lock().unwrap_or_else(PoisonError::into_inner);
            if sink.finished {
                return Ok(());
            }
        }
        let snap = self.agg.snapshot();
        let counters = snap
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::from_u64(*v)))
            .collect();
        self.write_line(&Json::Obj(vec![
            ("t".to_owned(), Json::Str("counters".to_owned())),
            ("counters".to_owned(), Json::Obj(counters)),
        ]));
        let snap_json = snap.to_json();
        if let Some(hists) = snap_json.get("histograms") {
            self.write_line(&Json::Obj(vec![
                ("t".to_owned(), Json::Str("histograms".to_owned())),
                ("histograms".to_owned(), hists.clone()),
            ]));
        }
        let mut sink = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        sink.finished = true;
        if let Some(w) = sink.writer.as_mut() {
            if let Err(e) = w.flush() {
                sink.error = Some(e);
            }
        }
        match sink.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for JsonLinesRecorder {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

impl std::fmt::Debug for JsonLinesRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesRecorder").finish_non_exhaustive()
    }
}

impl Recorder for JsonLinesRecorder {
    fn add_counter(&self, name: &str, delta: u64) {
        self.agg.add_counter(name, delta);
    }

    fn record_histogram(&self, name: &str, value: u64) {
        self.agg.record_histogram(name, value);
    }

    fn record_span(&self, path: &str, nanos: u64) {
        self.agg.record_span(path, nanos);
        self.write_line(&Json::Obj(vec![
            ("t".to_owned(), Json::Str("span".to_owned())),
            ("path".to_owned(), Json::Str(path.to_owned())),
            ("ns".to_owned(), Json::from_u64(nanos)),
        ]));
    }

    fn record_event(&self, name: &str, fields: &[(&str, Field)]) {
        self.agg.record_event(name, fields);
        let mut obj = vec![
            ("t".to_owned(), Json::Str("event".to_owned())),
            ("name".to_owned(), Json::Str(name.to_owned())),
        ];
        for (key, value) in fields {
            obj.push(((*key).to_owned(), value.to_json()));
        }
        self.write_line(&Json::Obj(obj));
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use std::sync::Arc;

    /// Shared in-memory sink so tests can inspect what was written.
    #[derive(Clone, Default)]
    struct Buf(Arc<Mutex<Vec<u8>>>);

    impl Write for Buf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Buf {
        fn contents(&self) -> String {
            String::from_utf8(
                self.0
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            )
            .unwrap()
        }
    }

    #[test]
    fn every_line_is_valid_json_and_aggregates_dump_at_finish() {
        let buf = Buf::default();
        let rec = JsonLinesRecorder::new(Box::new(buf.clone()));
        rec.add_counter("forest.cond3a.accept", 4);
        rec.record_histogram("forest.merge.cross_pairs", 6);
        rec.record_span("bkrus", 1200);
        rec.record_event(
            "audit.violation",
            &[
                ("kind", Field::from("ParentCycle")),
                ("node", Field::from(3u64)),
            ],
        );
        rec.finish().unwrap();

        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "span + event + counters + histograms");
        for line in &lines {
            Json::parse(line).unwrap();
        }
        let span = Json::parse(lines[0]).unwrap();
        assert_eq!(span.get("t").and_then(Json::as_str), Some("span"));
        assert_eq!(span.get("path").and_then(Json::as_str), Some("bkrus"));
        let event = Json::parse(lines[1]).unwrap();
        assert_eq!(
            event.get("kind").and_then(Json::as_str),
            Some("ParentCycle")
        );
        let counters = Json::parse(lines[2]).unwrap();
        assert_eq!(
            counters
                .get("counters")
                .and_then(|c| c.get("forest.cond3a.accept"))
                .and_then(Json::as_f64),
            Some(4.0)
        );
        let hists = Json::parse(lines[3]).unwrap();
        assert!(hists
            .get("histograms")
            .and_then(|h| h.get("forest.merge.cross_pairs"))
            .is_some());
    }

    #[test]
    fn finish_is_idempotent_and_drop_finishes() {
        let buf = Buf::default();
        {
            let rec = JsonLinesRecorder::new(Box::new(buf.clone()));
            rec.add_counter("c", 1);
            rec.finish().unwrap();
            rec.finish().unwrap();
            // Drop after explicit finish must not re-dump.
        }
        let text = buf.contents();
        assert_eq!(text.matches("\"t\":\"counters\"").count(), 1);
    }

    #[test]
    fn drop_without_finish_still_dumps() {
        let buf = Buf::default();
        {
            let rec = JsonLinesRecorder::new(Box::new(buf.clone()));
            rec.add_counter("c", 2);
        }
        let text = buf.contents();
        assert!(text.contains("\"t\":\"counters\""));
    }
}
