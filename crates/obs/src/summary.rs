//! In-memory aggregating recorder.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, PoisonError};

use crate::json::Json;
use crate::recorder::{Field, Recorder};

/// Number of power-of-two buckets: bucket `i` counts values `v` with
/// `ilog2(v) == i` (bucket 0 also takes `v == 0`), so bucket 63 covers the
/// whole `u64` range.
const BUCKETS: usize = 64;

/// A log-scale histogram: power-of-two buckets plus exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts observations with `ilog2(value) == i`.
    pub buckets: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub(crate) fn observe(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            // lint: allow(no-as-cast) — u32 bucket index → usize is lossless
            value.ilog2() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean observed value, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            // lint: allow(no-as-cast) — u64→f64 for a mean; precision loss above 2^53 is acceptable for reporting
            self.sum as f64 / self.count as f64
        }
    }

    fn to_json(&self) -> Json {
        // Only non-empty buckets, keyed by the bucket's lower bound.
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| {
                Json::Obj(vec![
                    ("ge".to_owned(), Json::from_u64(1u64 << i)),
                    ("n".to_owned(), Json::from_u64(*n)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("count".to_owned(), Json::from_u64(self.count)),
            ("sum".to_owned(), Json::from_u64(self.sum)),
            (
                "min".to_owned(),
                Json::from_u64(if self.count == 0 { 0 } else { self.min }),
            ),
            ("max".to_owned(), Json::from_u64(self.max)),
            ("buckets".to_owned(), Json::Arr(buckets)),
        ])
    }
}

/// Aggregated timing for one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// How many times the span completed.
    pub count: u64,
    /// Total wall-clock nanoseconds across completions (saturating).
    pub total_nanos: u64,
    /// Longest single completion in nanoseconds.
    pub max_nanos: u64,
}

/// A point-in-time copy of a [`SummaryRecorder`]'s counters, histograms and
/// span timings, detached from the recorder's lock.
#[derive(Debug, Clone, Default)]
pub struct CounterSnapshot {
    /// Counter name → accumulated value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → aggregated histogram.
    pub histograms: BTreeMap<String, Histogram>,
    /// Span path → aggregated timing.
    pub spans: BTreeMap<String, SpanStat>,
}

impl CounterSnapshot {
    /// Renders the snapshot as a JSON object with `counters`, `histograms`
    /// and `spans` keys (span timings in nanoseconds).
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::from_u64(*v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_json()))
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("count".to_owned(), Json::from_u64(s.count)),
                        ("total_ns".to_owned(), Json::from_u64(s.total_nanos)),
                        ("max_ns".to_owned(), Json::from_u64(s.max_nanos)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("counters".to_owned(), Json::Obj(counters)),
            ("histograms".to_owned(), Json::Obj(histograms)),
            ("spans".to_owned(), Json::Obj(spans)),
        ])
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStat>,
    events: BTreeMap<String, u64>,
}

/// Aggregates everything in memory behind a mutex. Cheap enough for hot
/// loops (one uncontended lock per record), and the natural sink for
/// `--profile` summaries and bench counter snapshots.
#[derive(Default)]
pub struct SummaryRecorder {
    inner: Mutex<Inner>,
}

impl SummaryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        SummaryRecorder::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current value of the named counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Total nanoseconds recorded under the span path (0 if never seen).
    pub fn span_nanos(&self, path: &str) -> u64 {
        self.lock()
            .spans
            .get(path)
            .map(|s| s.total_nanos)
            .unwrap_or(0)
    }

    /// Aggregated stats for the span path, if it completed at least once.
    pub fn span_stats(&self, path: &str) -> Option<SpanStat> {
        self.lock().spans.get(path).copied()
    }

    /// Number of times the named event fired.
    pub fn event_count(&self, name: &str) -> u64 {
        self.lock().events.get(name).copied().unwrap_or(0)
    }

    /// Copies out all counters, histograms and span timings.
    pub fn snapshot(&self) -> CounterSnapshot {
        let inner = self.lock();
        CounterSnapshot {
            counters: inner.counters.clone(),
            histograms: inner.histograms.clone(),
            spans: inner.spans.clone(),
        }
    }

    /// Renders the current state as a JSON object (see
    /// [`CounterSnapshot::to_json`]).
    pub fn to_json(&self) -> Json {
        self.snapshot().to_json()
    }

    /// Renders a human-readable profile: spans sorted by total time, then
    /// counters, histograms and event counts alphabetically.
    pub fn render_text(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        if !inner.spans.is_empty() {
            let _ = writeln!(out, "spans (total ms / count / max ms):");
            let mut spans: Vec<(&String, &SpanStat)> = inner.spans.iter().collect();
            spans.sort_by_key(|(_, s)| std::cmp::Reverse(s.total_nanos));
            for (path, s) in spans {
                let _ = writeln!(
                    out,
                    "  {path}: {:.3} / {} / {:.3}",
                    nanos_to_ms(s.total_nanos),
                    s.count,
                    nanos_to_ms(s.max_nanos),
                );
            }
        }
        if !inner.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in &inner.counters {
                let _ = writeln!(out, "  {name}: {v}");
            }
        }
        if !inner.histograms.is_empty() {
            let _ = writeln!(out, "histograms (count / mean / max):");
            for (name, h) in &inner.histograms {
                let _ = writeln!(out, "  {name}: {} / {:.1} / {}", h.count, h.mean(), h.max);
            }
        }
        if !inner.events.is_empty() {
            let _ = writeln!(out, "events:");
            for (name, n) in &inner.events {
                let _ = writeln!(out, "  {name}: {n}");
            }
        }
        out
    }
}

fn nanos_to_ms(nanos: u64) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    {
        // lint: allow(no-as-cast) — u64→f64 for display only
        nanos as f64 / 1.0e6
    }
}

impl std::fmt::Debug for SummaryRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("SummaryRecorder")
            .field("counters", &inner.counters.len())
            .field("histograms", &inner.histograms.len())
            .field("spans", &inner.spans.len())
            .field("events", &inner.events.len())
            .finish()
    }
}

impl Recorder for SummaryRecorder {
    fn add_counter(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        let slot = inner.counters.entry(name.to_owned()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn record_histogram(&self, name: &str, value: u64) {
        self.lock()
            .histograms
            .entry(name.to_owned())
            .or_insert_with(Histogram::new)
            .observe(value);
    }

    fn record_span(&self, path: &str, nanos: u64) {
        let mut inner = self.lock();
        let stat = inner.spans.entry(path.to_owned()).or_default();
        stat.count += 1;
        stat.total_nanos = stat.total_nanos.saturating_add(nanos);
        stat.max_nanos = stat.max_nanos.max(nanos);
    }

    fn record_event(&self, name: &str, _fields: &[(&str, Field)]) {
        let mut inner = self.lock();
        *inner.events.entry(name.to_owned()).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = SummaryRecorder::new();
        r.add_counter("a", 1);
        r.add_counter("a", 2);
        r.add_counter("b", 5);
        assert_eq!(r.counter("a"), 3);
        assert_eq!(r.counter("b"), 5);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        let r = SummaryRecorder::new();
        for v in [0, 1, 2, 3, 4, 1024] {
            r.record_histogram("h", v);
        }
        let snap = r.snapshot();
        let h = snap.histograms.get("h").unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1034);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        // 0 and 1 land in bucket 0; 2 and 3 in bucket 1; 4 in bucket 2;
        // 1024 in bucket 10.
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[10], 1);
    }

    #[test]
    fn span_stats_track_count_total_max() {
        let r = SummaryRecorder::new();
        r.record_span("s", 10);
        r.record_span("s", 30);
        let s = r.span_stats("s").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_nanos, 40);
        assert_eq!(s.max_nanos, 30);
        assert!(r.span_stats("missing").is_none());
    }

    #[test]
    fn snapshot_to_json_has_expected_shape() {
        let r = SummaryRecorder::new();
        r.add_counter("c", 7);
        r.record_histogram("h", 8);
        r.record_span("s", 100);
        let json = r.to_json();
        assert_eq!(
            json.get("counters")
                .and_then(|c| c.get("c"))
                .and_then(Json::as_f64),
            Some(7.0)
        );
        let h = json.get("histograms").and_then(|h| h.get("h")).unwrap();
        assert_eq!(h.get("count").and_then(Json::as_f64), Some(1.0));
        let s = json.get("spans").and_then(|s| s.get("s")).unwrap();
        assert_eq!(s.get("total_ns").and_then(Json::as_f64), Some(100.0));
        // Round-trips through the serializer and parser.
        let reparsed = Json::parse(&json.to_string()).unwrap();
        assert_eq!(
            reparsed
                .get("counters")
                .and_then(|c| c.get("c"))
                .and_then(Json::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn render_text_mentions_everything() {
        let r = SummaryRecorder::new();
        r.add_counter("cnt", 1);
        r.record_histogram("hist", 2);
        r.record_span("sp", 3);
        r.record_event("ev", &[]);
        let text = r.render_text();
        assert!(text.contains("cnt"));
        assert!(text.contains("hist"));
        assert!(text.contains("sp"));
        assert!(text.contains("ev"));
        assert_eq!(r.event_count("ev"), 1);
    }
}
