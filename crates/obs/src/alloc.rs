//! Feature-gated counting global allocator.
//!
//! [`CountingAlloc`] wraps the system allocator and counts, per thread,
//! how many heap allocations were requested and how many bytes they
//! asked for. Spans read these counters at entry and exit, and report
//! the delta to the installed recorder via
//! [`Recorder::record_span_alloc`](crate::Recorder::record_span_alloc) —
//! which is how `--profile` grows `allocs / KiB` columns.
//!
//! Binaries opt in (the counters only move when the process actually
//! runs under this allocator):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: bmst_obs::alloc::CountingAlloc = bmst_obs::alloc::CountingAlloc;
//! ```
//!
//! Design notes:
//!
//! * Counters are thread-local `Cell<u64>`s with const initialisers, so
//!   reading or bumping them never allocates — the allocator cannot
//!   recurse into itself.
//! * Only `alloc` and `realloc` count (a realloc counts as one
//!   allocation of the new size); `dealloc` is not tracked, so the
//!   numbers measure allocation *pressure* (allocator traffic), not
//!   resident footprint.
//! * Counts are per-thread: a span observes the allocations made on the
//!   thread it lives on, which is exactly the attribution a scoped
//!   profile wants. Nested spans are cumulative — a child's allocations
//!   also appear in its parent's delta.
#![allow(unsafe_code)] // the one place in the workspace that implements GlobalAlloc

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// A point-in-time reading of this thread's allocation counters.
///
/// Subtract two snapshots (via [`AllocSnapshot::delta_since`]) to get the
/// traffic in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Heap allocations requested on this thread so far.
    pub allocs: u64,
    /// Bytes those allocations requested.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// The allocation traffic between `earlier` and `self` (saturating,
    /// in case the u64 counters ever wrap).
    pub fn delta_since(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }
}

/// Reads this thread's current allocation counters. Zero forever unless
/// the process runs under [`CountingAlloc`].
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOC_COUNT.with(Cell::get),
        bytes: ALLOC_BYTES.with(Cell::get),
    }
}

fn count(bytes: usize) {
    ALLOC_COUNT.with(|c| c.set(c.get().wrapping_add(1)));
    // usize -> u64 is lossless on every supported target.
    ALLOC_BYTES.with(|c| c.set(c.get().wrapping_add(bytes as u64)));
}

/// The counting allocator: [`System`] plus per-thread traffic counters.
///
/// Install as `#[global_allocator]` to make [`snapshot`] (and therefore
/// span allocation columns) live.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

// SAFETY: every method delegates directly to `System`, which upholds the
// GlobalAlloc contract; the counter bumps touch only const-initialised
// thread-local Cells and never allocate, so there is no reentrancy.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        // SAFETY: forwarded verbatim; caller upholds the layout contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; caller upholds the layout contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        // SAFETY: forwarded verbatim; caller upholds the layout contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size);
        // SAFETY: forwarded verbatim; caller upholds the layout contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic
    use super::*;

    #[test]
    fn delta_since_subtracts() {
        let a = AllocSnapshot {
            allocs: 3,
            bytes: 100,
        };
        let b = AllocSnapshot {
            allocs: 10,
            bytes: 450,
        };
        assert_eq!(
            b.delta_since(a),
            AllocSnapshot {
                allocs: 7,
                bytes: 350
            }
        );
    }

    #[test]
    fn snapshot_is_monotone_on_this_thread() {
        // Without the allocator installed both reads are 0; with it
        // installed (the integration test binary does) the second read is
        // >= the first. Either way the delta is non-negative.
        let before = snapshot();
        let v: Vec<u64> = (0..64).collect();
        let after = snapshot();
        let delta = after.delta_since(before);
        assert!(delta.allocs <= u64::MAX / 2, "no wraparound: {delta:?}");
        drop(v);
    }
}
