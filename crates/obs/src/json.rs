//! Minimal JSON support: a value type, a serialiser with full string
//! escaping, and a recursive-descent parser.
//!
//! The workspace is offline (no `serde`), and the observability layer needs
//! only a small, well-tested JSON core: recorders serialise counter
//! snapshots and trace lines, the bench harness writes `BENCH_*.json`
//! trajectory files, and `cargo xtask check-trace`/`check-bench` parse them
//! back for validation.
//!
//! Non-finite numbers have no JSON representation; [`Json::Num`] serialises
//! them as `null` (callers that must preserve `inf` — the unbounded epsilon
//! row — encode it as the string `"inf"`).
//!
//! # Examples
//!
//! ```
//! use bmst_obs::json::Json;
//!
//! let v = Json::Obj(vec![
//!     ("name".into(), Json::Str("p1".into())),
//!     ("cost".into(), Json::Num(42.5)),
//! ]);
//! let text = v.to_string();
//! assert_eq!(Json::parse(&text).unwrap(), v);
//! ```

use std::fmt;

/// A JSON value. Objects preserve insertion order (no deduplication).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values serialise as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a number from a `u64` counter value.
    ///
    /// Counters comfortably fit `f64`'s 2^53 integer range for any run this
    /// workspace performs; values beyond it lose low-order bits.
    pub fn from_u64(v: u64) -> Json {
        #[allow(clippy::cast_precision_loss)]
        // lint: allow(no-as-cast) — u64 -> f64 rounds above 2^53, fine for metrics
        Json::Num(v as f64)
    }

    /// Looks up `key` in an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses a complete JSON document (surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset and a message on malformed input
    /// or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes `s` as a JSON string literal (quotes included) with all mandatory
/// escapes.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Escapes `s` as a standalone JSON string literal, quotes included.
pub fn escape(s: &str) -> String {
    Json::Str(s.to_owned()).to_string()
}

/// A JSON parse error: byte offset and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", char::from(b))))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Json::Obj(pairs)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(char::from(b)),
                Some(first) => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // continuation bytes are guaranteed well-formed; collect
                    // the full sequence.
                    let len = match first {
                        b if b >> 5 == 0b110 => 2,
                        b if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u`, combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // High surrogate: require a following \uXXXX low surrogate.
        if (0xD800..0xDC00).contains(&first) {
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.err("lone high surrogate"));
            }
            let low = self.hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
            return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
        }
        if (0xDC00..0xE000).contains(&first) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            value = value * 16 + d;
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    fn roundtrip(v: &Json) {
        let text = v.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(&back, v, "through {text}");
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(&Json::Null);
        roundtrip(&Json::Bool(true));
        roundtrip(&Json::Bool(false));
        roundtrip(&Json::Num(0.0));
        roundtrip(&Json::Num(-17.25));
        roundtrip(&Json::Num(1e-9));
        roundtrip(&Json::Num(12345678901234.0));
        roundtrip(&Json::Str(String::new()));
        roundtrip(&Json::Str("plain".into()));
    }

    #[test]
    fn escaping_roundtrips() {
        for s in [
            "quote\" backslash\\ slash/",
            "newline\n tab\t return\r",
            "control\u{01}\u{1f}",
            "unicode: αβγ 日本語 🦀",
            "backspace\u{08} formfeed\u{0C}",
        ] {
            roundtrip(&Json::Str(s.into()));
        }
    }

    #[test]
    fn escape_helper_produces_quoted_literal() {
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("x\ny"), "\"x\\ny\"");
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::Obj(vec![
            ("alg".into(), Json::Str("bkrus".into())),
            ("eps".into(), Json::Num(0.2)),
            (
                "counters".into(),
                Json::Obj(vec![
                    ("forest.cond3a.accept".into(), Json::from_u64(17)),
                    ("forest.cond3b.reject".into(), Json::from_u64(3)),
                ]),
            ),
            (
                "list".into(),
                Json::Arr(vec![Json::Null, Json::Bool(false), Json::Num(1.5)]),
            ),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
        ]);
        roundtrip(&v);
    }

    #[test]
    fn parses_standard_syntax() {
        let v = Json::parse(r#" { "a" : [ 1 , 2.5 , -3e2 ] , "b" : null } "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Num(-300.0));
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("A\u{e9}".into()));
        // Surrogate pair for U+1F980 (crab).
        assert_eq!(
            Json::parse(r#""🦀""#).unwrap(),
            Json::Str("\u{1F980}".into())
        );
        // A lone high surrogate is rejected.
        assert!(Json::parse(r#""\ud83e""#).is_err());
        // Raw (unescaped) multi-byte UTF-8 passes through.
        assert_eq!(
            Json::parse("\"\u{65e5}\u{672c}\u{8a9e}\"").unwrap(),
            Json::Str("\u{65e5}\u{672c}\u{8a9e}".into())
        );
    }

    #[test]
    fn non_finite_serialises_as_null() {
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn errors_carry_positions() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\":}",
            "1 2",
            "{\"a\" 1}",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.msg.is_empty(), "no message for {bad:?}");
            assert!(err.to_string().contains("json error"), "{bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"s":"x","n":2}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(2.0));
        assert!(v.get("missing").is_none());
        assert!(v.as_obj().is_some());
        assert!(v.as_arr().is_none());
    }
}
