//! Observability for the BMST workspace: spans, counters, histograms, and
//! structured events behind a cheap global handle.
//!
//! The workspace is offline, so this crate is written from scratch (no
//! `tracing`/`metrics`); it exposes exactly the surface the algorithm
//! crates need:
//!
//! * [`span`] — RAII wall-clock timing with nesting: a span dropped inside
//!   another records under the slash-joined path (`bkrus/merge`);
//! * [`counter`] — named monotonic counters (`bkrus.edges_scanned`);
//! * [`histogram`] — named log-scale (power-of-two bucket) histograms for
//!   size distributions (`forest.merge.cross_pairs`);
//! * [`event`] — structured one-shot events with typed fields
//!   (`audit.violation`).
//!
//! All four are no-ops costing roughly **one relaxed atomic load** until a
//! [`Recorder`] is installed. Four recorders ship in-tree:
//! [`NoopRecorder`] (discard), [`SummaryRecorder`] (in-memory aggregation,
//! renderable as text or JSON), [`SpanTreeRecorder`] (profiling: nested
//! spans aggregated into a path tree with self/cumulative time, renderable
//! as a table or collapsed-stack flamegraph lines) and
//! [`JsonLinesRecorder`] (streams spans and events as JSON lines, dumping
//! aggregated counters/histograms on [`JsonLinesRecorder::finish`]).
//! [`MultiRecorder`] fans out to several.
//!
//! With the `alloc` feature, the [`alloc`] module adds a counting global
//! allocator; processes that install it get per-span allocation deltas
//! reported through [`Recorder::record_span_alloc`].
//!
//! # Naming scheme
//!
//! Metric names are `<module>.<metric>[.<outcome>]`, e.g.
//! `bkrus.edges_scanned`, `forest.cond3a.accept`, `gabow.trees_examined`.
//! Span names are bare algorithm names (`bkrus`, `bkex`, `gabow`); nesting
//! produces paths like `bkh2/bkrus`.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use bmst_obs::SummaryRecorder;
//!
//! let recorder = Arc::new(SummaryRecorder::new());
//! {
//!     let _guard = bmst_obs::scoped(recorder.clone());
//!     let _span = bmst_obs::span("work");
//!     bmst_obs::counter("work.items", 3);
//! }
//! assert_eq!(recorder.counter("work.items"), 3);
//! assert!(recorder.span_nanos("work") > 0);
//! ```

// `deny`, not `forbid`: the feature-gated `alloc` module implements
// `GlobalAlloc` and carries its own scoped `#![allow(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

/// Counting global allocator and scoped allocation snapshots
/// (feature `alloc`).
#[cfg(feature = "alloc")]
pub mod alloc;
/// Minimal JSON value model, writer, and parser (no external crates).
pub mod json;
mod jsonl;
mod profile;
mod recorder;
mod span;
mod summary;

pub use jsonl::JsonLinesRecorder;
pub use profile::{SpanNode, SpanTreeRecorder};
pub use recorder::{Field, MultiRecorder, NoopRecorder, Recorder};
pub use span::SpanGuard;
pub use summary::{CounterSnapshot, Histogram, SpanStat, SummaryRecorder};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

/// Fast-path flag: `false` means every instrumentation call returns after
/// one relaxed atomic load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed recorder, if any. Read-locked on every slow-path call;
/// write-locked only by [`install`]/[`uninstall`].
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Serialises [`scoped`] users: the guard holds this lock so concurrent
/// scoped recordings (e.g. parallel tests) queue instead of clobbering each
/// other's global recorder.
static SCOPE_LOCK: Mutex<()> = Mutex::new(());

/// Returns `true` when a recorder is installed and instrumentation is live.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `recorder` as the process-global recorder, replacing and
/// returning any previous one. Prefer [`scoped`] unless the recorder should
/// outlive the current scope (e.g. for a whole CLI invocation).
pub fn install(recorder: Arc<dyn Recorder>) -> Option<Arc<dyn Recorder>> {
    let mut slot = RECORDER.write().unwrap_or_else(PoisonError::into_inner);
    let previous = slot.replace(recorder);
    ENABLED.store(true, Ordering::Release);
    previous
}

/// Removes the process-global recorder, returning it so the caller can
/// flush or inspect it. Instrumentation reverts to the ~free disabled path.
pub fn uninstall() -> Option<Arc<dyn Recorder>> {
    ENABLED.store(false, Ordering::Release);
    RECORDER
        .write()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
}

/// Installs `recorder` for the lifetime of the returned guard.
///
/// Scoped installations are serialised process-wide: a second call blocks
/// until the first guard drops, which makes concurrent tests that each
/// install their own recorder race-free by construction.
pub fn scoped(recorder: Arc<dyn Recorder>) -> ScopedRecorder {
    let lock = SCOPE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    install(recorder);
    ScopedRecorder { _lock: lock }
}

/// RAII guard returned by [`scoped`]; uninstalls the recorder on drop.
#[must_use = "dropping the guard immediately uninstalls the recorder"]
pub struct ScopedRecorder {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ScopedRecorder {
    fn drop(&mut self) {
        uninstall();
    }
}

impl std::fmt::Debug for ScopedRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopedRecorder").finish_non_exhaustive()
    }
}

/// Runs `f` against the installed recorder, if any. The slow path of every
/// instrumentation call.
pub(crate) fn with_recorder(f: impl FnOnce(&dyn Recorder)) {
    if !enabled() {
        return;
    }
    let slot = RECORDER.read().unwrap_or_else(PoisonError::into_inner);
    if let Some(r) = slot.as_deref() {
        f(r);
    }
}

/// Adds `delta` to the named counter. ~One atomic load when disabled.
#[inline]
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| r.add_counter(name, delta));
}

/// Records `value` into the named log-scale histogram.
#[inline]
pub fn histogram(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| r.record_histogram(name, value));
}

/// Emits a structured event with typed fields.
///
/// # Examples
///
/// ```
/// use bmst_obs::Field;
/// bmst_obs::event("audit.violation", &[("kind", Field::from("ParentCycle"))]);
/// ```
#[inline]
pub fn event(name: &str, fields: &[(&str, Field)]) {
    if !enabled() {
        return;
    }
    with_recorder(|r| r.record_event(name, fields));
}

/// Opens a named span; the returned guard records its wall-clock duration
/// (under the slash-joined path of enclosing spans) when dropped.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::enter(name)
}

/// [`span`] for runtime-computed names (e.g. per-worker spans like
/// `router.net.w3`). The name is only materialised when instrumentation is
/// enabled, so callers should still gate any `format!` behind [`enabled`].
#[inline]
pub fn span_dyn(name: &str) -> SpanGuard {
    SpanGuard::enter(name)
}
