//! RAII spans with thread-local nesting.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Stack of open span paths on this thread; the top is the parent of
    /// the next span opened here.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Guard returned by [`span`](crate::span): records the span's wall-clock
/// duration under its nesting path when dropped.
///
/// Nesting is per-thread: a span opened while another is live on the same
/// thread records under `parent/child`. A guard created while
/// instrumentation was disabled stays inert even if a recorder is installed
/// before it drops (and vice versa, a guard created enabled records to
/// whatever recorder is installed at drop time, or nothing).
#[must_use = "dropping the guard immediately closes the span"]
#[derive(Debug)]
pub struct SpanGuard {
    /// Full nesting path; `None` when the guard was created disabled.
    path: Option<String>,
    start: Instant,
    /// Thread-local allocation counters at entry, read *after* the path
    /// string is built so the guard's own bookkeeping allocation does not
    /// pollute the span's delta. Only meaningful when the process runs
    /// under [`crate::alloc::CountingAlloc`]; zero-delta otherwise.
    #[cfg(feature = "alloc")]
    alloc_base: crate::alloc::AllocSnapshot,
}

impl SpanGuard {
    pub(crate) fn enter(name: &str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard {
                path: None,
                start: Instant::now(),
                #[cfg(feature = "alloc")]
                alloc_base: crate::alloc::AllocSnapshot::default(),
            };
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_owned(),
            };
            stack.push(path.clone());
            path
        });
        SpanGuard {
            path: Some(path),
            start: Instant::now(),
            #[cfg(feature = "alloc")]
            alloc_base: crate::alloc::snapshot(),
        }
    }

    /// The slash-joined nesting path, or `None` for an inert guard.
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else {
            return;
        };
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // Read the allocation delta before any drop-path bookkeeping so the
        // guard's own teardown does not inflate it.
        #[cfg(feature = "alloc")]
        let alloc_delta = crate::alloc::snapshot().delta_since(self.alloc_base);
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        crate::with_recorder(|r| {
            r.record_span(&path, nanos);
            #[cfg(feature = "alloc")]
            if alloc_delta.allocs > 0 {
                r.record_span_alloc(&path, alloc_delta.allocs, alloc_delta.bytes);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::SummaryRecorder;
    use std::sync::Arc;

    #[test]
    fn disabled_guard_is_inert() {
        // No scoped recorder installed on this thread right now is not
        // guaranteed (tests share the process), so go through `scoped` to
        // serialise with other installing tests, then check the
        // disabled path after the guard drops.
        let r = Arc::new(SummaryRecorder::new());
        drop(crate::scoped(r));
        let g = SpanGuard::enter("inert");
        assert!(g.path().is_none() || crate::enabled());
    }

    #[test]
    fn paths_nest_per_thread() {
        let r = Arc::new(SummaryRecorder::new());
        let _guard = crate::scoped(r.clone());
        {
            let outer = crate::span("outer");
            assert_eq!(outer.path(), Some("outer"));
            let inner = crate::span("inner");
            assert_eq!(inner.path(), Some("outer/inner"));
        }
        assert_eq!(r.span_stats("outer").map(|s| s.count), Some(1));
        assert_eq!(r.span_stats("outer/inner").map(|s| s.count), Some(1));
    }
}
