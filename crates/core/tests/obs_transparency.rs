//! Instrumentation must never change algorithm results: with a recorder
//! installed (even a discarding one) every construction must return a tree
//! bit-identical to the uninstrumented run.
#![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic

use std::sync::Arc;

use bmst_core::{
    bkex, bkh2, bkrus, bprim, find_builder, gabow_bmst, BkexConfig, EdgeSupply, ProblemContext,
};
use bmst_geom::{Net, Point};
use bmst_obs::{NoopRecorder, SpanTreeRecorder, SummaryRecorder};
use bmst_tree::RoutingTree;

fn test_net() -> Net {
    Net::with_source_first(vec![
        Point::new(0.0, 0.0),
        Point::new(8.0, 0.0),
        Point::new(5.0, 0.0),
        Point::new(6.0, 1.0),
        Point::new(7.0, 1.0),
        Point::new(2.0, 3.0),
    ])
    .unwrap()
}

fn run_all(net: &Net, eps: f64) -> Vec<RoutingTree> {
    vec![
        bkrus(net, eps).unwrap(),
        bprim(net, eps).unwrap(),
        bkh2(net, eps).unwrap(),
        bkex(net, eps, BkexConfig::default()).unwrap(),
        gabow_bmst(net, eps).unwrap(),
    ]
}

fn assert_identical(a: &RoutingTree, b: &RoutingTree) {
    assert_eq!(a.universe(), b.universe());
    assert_eq!(a.root(), b.root());
    for v in 0..a.universe() {
        assert_eq!(a.parent(v), b.parent(v), "parent of {v} differs");
        assert!(
            a.dist_from_root(v).to_bits() == b.dist_from_root(v).to_bits()
                || (a.dist_from_root(v).is_infinite() && b.dist_from_root(v).is_infinite()),
            "dist_from_root({v}) differs"
        );
    }
    assert_eq!(a.cost().to_bits(), b.cost().to_bits(), "cost differs");
}

#[test]
fn recorders_leave_outputs_bit_identical() {
    let net = test_net();
    for eps in [0.0, 0.3, f64::INFINITY] {
        let baseline = run_all(&net, eps);

        let with_noop = {
            let _guard = bmst_obs::scoped(Arc::new(NoopRecorder));
            run_all(&net, eps)
        };
        let summary = Arc::new(SummaryRecorder::new());
        let with_summary = {
            let _guard = bmst_obs::scoped(summary.clone());
            run_all(&net, eps)
        };

        for (b, n) in baseline.iter().zip(&with_noop) {
            assert_identical(b, n);
        }
        for (b, s) in baseline.iter().zip(&with_summary) {
            assert_identical(b, s);
        }
        // The summary run must actually have recorded the hot paths.
        assert!(summary.counter("bkrus.edges_scanned") > 0);
        if eps.is_finite() {
            let snap = summary.snapshot();
            assert!(
                snap.counters.keys().any(|k| k.starts_with("forest.cond3")),
                "finite eps must exercise (3-a)/(3-b): {:?}",
                snap.counters.keys().collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn span_tree_recorder_is_transparent_and_sees_context_spans() {
    let net = test_net();
    for eps in [0.0, 0.3, f64::INFINITY] {
        let baseline = run_all(&net, eps);
        let tree = Arc::new(SpanTreeRecorder::new());
        let with_tree = {
            let _guard = bmst_obs::scoped(tree.clone());
            run_all(&net, eps)
        };
        for (b, t) in baseline.iter().zip(&with_tree) {
            assert_identical(b, t);
        }
        // The shared-context builders appear as spans in the profile...
        let paths: Vec<String> = tree.nodes().into_iter().map(|(p, _)| p).collect();
        assert!(
            paths.iter().any(|p| p.ends_with("context.matrix")),
            "context.matrix span missing: {paths:?}"
        );
        assert!(
            paths.iter().any(|p| p.ends_with("context.sorted_edges")),
            "context.sorted_edges span missing: {paths:?}"
        );
        // ...and sorted_edges must NOT nest the matrix build (it is hoisted
        // out so each span reports honest self time).
        assert!(
            !paths.iter().any(|p| p.contains("context.sorted_edges/")),
            "sorted_edges should be a leaf span: {paths:?}"
        );
        // Counters still flow through the embedded summary.
        assert!(tree.summary().counter("bkrus.edges_scanned") > 0);
    }
}

#[test]
fn forest_merge_span_is_recorded_under_builders() {
    let net = test_net();
    let tree = Arc::new(SpanTreeRecorder::new());
    {
        let _guard = bmst_obs::scoped(tree.clone());
        let _ = bkrus(&net, 0.3).unwrap();
    }
    let merged: u64 = tree
        .nodes()
        .into_iter()
        .filter(|(p, _)| p.ends_with("forest.merge"))
        .map(|(_, n)| n.count)
        .sum();
    // A 6-terminal net needs exactly 5 merges to connect the forest.
    assert_eq!(merged, 5, "every accepted edge performs one merge");
}

#[test]
fn sparse_supply_is_bit_identical_and_emits_index_spans() {
    let net = test_net();
    for eps in [0.0, 0.3, f64::INFINITY] {
        for name in ["bkrus", "bprim"] {
            // Fresh contexts per builder: the neighbor index is cached in a
            // OnceLock, and its construction span only fires on first use.
            let dense_cx = ProblemContext::new(&net, eps)
                .unwrap()
                .with_edge_supply(EdgeSupply::Dense);
            let sparse_cx = ProblemContext::new(&net, eps)
                .unwrap()
                .with_edge_supply(EdgeSupply::Sparse);
            let builder = find_builder(name).unwrap();
            let dense = builder.build(&dense_cx).unwrap();

            // The sparse run is both instrumented and supplied from the
            // neighbor index — it must still match the dense tree exactly.
            let tree = Arc::new(SpanTreeRecorder::new());
            let sparse = {
                let _guard = bmst_obs::scoped(tree.clone());
                builder.build(&sparse_cx).unwrap()
            };
            assert_identical(&dense, &sparse);

            let paths: Vec<String> = tree.nodes().into_iter().map(|(p, _)| p).collect();
            assert!(
                paths.iter().any(|p| p.ends_with("context.neighbor_index")),
                "{name}: context.neighbor_index span missing: {paths:?}"
            );
            if name == "bkrus" {
                // BKRUS drains the lazy stream, so refill windows appear.
                assert!(
                    paths.iter().any(|p| p.ends_with("context.edge_stream")),
                    "bkrus: context.edge_stream span missing: {paths:?}"
                );
            }
            assert!(
                !paths.iter().any(|p| p.ends_with("context.matrix")),
                "{name}: sparse run must not build the dense matrix: {paths:?}"
            );
        }
    }
}

#[test]
fn spans_nest_across_algorithm_layers() {
    let net = test_net();
    let rec = Arc::new(SummaryRecorder::new());
    {
        let _guard = bmst_obs::scoped(rec.clone());
        let _ = bkh2(&net, 0.2).unwrap();
    }
    // bkh2 wraps both the bkrus construction and the bkex exchange phase.
    assert!(rec.span_stats("bkh2").is_some());
    assert!(rec.span_stats("bkh2/bkrus").is_some());
    assert!(rec.span_stats("bkh2/bkex").is_some());
}
