//! Evaluation metrics: the ratios reported in every table of the paper.

use bmst_geom::Net;
use bmst_tree::RoutingTree;

use crate::{mst_tree, spt_tree};

/// The two ratios the paper reports for every tree:
///
/// * `perf_ratio = cost(T) / cost(MST)` — routing-cost overhead;
/// * `path_ratio = longest path(T) / longest path(SPT)` — radius overhead
///   (the SPT's longest path is the reference `R`).
///
/// # Examples
///
/// ```
/// use bmst_core::{bkrus, TreeReport};
/// use bmst_geom::{Net, Point};
///
/// let net = Net::with_source_first(vec![
///     Point::new(0.0, 0.0),
///     Point::new(5.0, 0.0),
///     Point::new(6.0, 1.0),
/// ])?;
/// let t = bkrus(&net, 0.5)?;
/// let rep = TreeReport::for_tree(&net, &t);
/// assert!(rep.perf_ratio >= 1.0 - 1e-9);           // never beats the MST
/// assert!(rep.path_ratio <= 1.5 + 1e-9);            // bounded by 1 + eps
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeReport {
    /// Total wirelength of the tree.
    pub cost: f64,
    /// Longest source-to-sink path length in the tree.
    pub longest_path: f64,
    /// `cost / cost(MST)`; `1.0` for degenerate nets with zero MST cost.
    pub perf_ratio: f64,
    /// `longest_path / R`; `1.0` for degenerate nets with zero radius.
    pub path_ratio: f64,
}

impl TreeReport {
    /// Computes the report, deriving the MST and SPT baselines from the net.
    ///
    /// Prefer [`TreeReport::with_baselines`] inside sweeps so the baselines
    /// are computed once.
    pub fn for_tree(net: &Net, tree: &RoutingTree) -> Self {
        let mst_cost = mst_tree(net).cost();
        let spt_radius = spt_tree(net).source_radius();
        Self::with_baselines(net, tree, mst_cost, spt_radius)
    }

    /// Computes the report against precomputed baselines
    /// (`mst_cost = cost(MST)`, `spt_radius = R`).
    pub fn with_baselines(net: &Net, tree: &RoutingTree, mst_cost: f64, spt_radius: f64) -> Self {
        let cost = tree.cost();
        let longest_path = tree.max_dist_from_root(net.sinks());
        TreeReport {
            cost,
            longest_path,
            perf_ratio: if mst_cost > 0.0 { cost / mst_cost } else { 1.0 },
            path_ratio: if spt_radius > 0.0 {
                longest_path / spt_radius
            } else {
                1.0
            },
        }
    }

    /// Serialises the report as a JSON object with `cost`, `longest_path`,
    /// `perf_ratio` and `path_ratio` keys.
    pub fn to_json(&self) -> bmst_obs::json::Json {
        use bmst_obs::json::Json;
        Json::Obj(vec![
            ("cost".to_owned(), Json::Num(self.cost)),
            ("longest_path".to_owned(), Json::Num(self.longest_path)),
            ("perf_ratio".to_owned(), Json::Num(self.perf_ratio)),
            ("path_ratio".to_owned(), Json::Num(self.path_ratio)),
        ])
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::{bkrus, spt_tree};
    use bmst_geom::Point;

    fn net() -> Net {
        Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 1.0),
            Point::new(11.0, 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn mst_report_is_unit_perf() {
        let net = net();
        let rep = TreeReport::for_tree(&net, &mst_tree(&net));
        assert!((rep.perf_ratio - 1.0).abs() < 1e-12);
        assert!(rep.path_ratio >= 1.0 - 1e-12);
    }

    #[test]
    fn spt_report_is_unit_path() {
        let net = net();
        let rep = TreeReport::for_tree(&net, &spt_tree(&net));
        assert!((rep.path_ratio - 1.0).abs() < 1e-12);
        assert!(rep.perf_ratio >= 1.0 - 1e-12);
    }

    #[test]
    fn with_baselines_matches_for_tree() {
        let net = net();
        let t = bkrus(&net, 0.2).unwrap();
        let a = TreeReport::for_tree(&net, &t);
        let b = TreeReport::with_baselines(
            &net,
            &t,
            mst_tree(&net).cost(),
            spt_tree(&net).source_radius(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn report_round_trips_through_json() {
        use bmst_obs::json::Json;
        let net = net();
        let rep = TreeReport::for_tree(&net, &bkrus(&net, 0.2).unwrap());
        let text = rep.to_json().to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("cost").and_then(Json::as_f64), Some(rep.cost));
        assert_eq!(
            parsed.get("longest_path").and_then(Json::as_f64),
            Some(rep.longest_path)
        );
        assert_eq!(
            parsed.get("perf_ratio").and_then(Json::as_f64),
            Some(rep.perf_ratio)
        );
        assert_eq!(
            parsed.get("path_ratio").and_then(Json::as_f64),
            Some(rep.path_ratio)
        );
    }

    #[test]
    fn degenerate_single_node() {
        let net = Net::with_source_first(vec![Point::new(0.0, 0.0)]).unwrap();
        let t = mst_tree(&net);
        let rep = TreeReport::for_tree(&net, &t);
        assert_eq!(rep.perf_ratio, 1.0);
        assert_eq!(rep.path_ratio, 1.0);
        assert_eq!(rep.cost, 0.0);
    }
}
