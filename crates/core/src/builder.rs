//! The [`TreeBuilder`] trait and the construction registry.
//!
//! Every construction in this crate is exposed twice: as the historical
//! free function (`bkrus(net, eps)`, `bprim(net, eps)`, ...) and as a unit
//! struct in [`builders`] implementing [`TreeBuilder`] over a shared
//! [`ProblemContext`]. The trait objects in [`registry`] carry a
//! [`BuilderDescriptor`] — a stable kebab-case name, aliases, and
//! capability flags — so the router, CLI, and benchmarks can enumerate and
//! resolve constructions without hard-coded name dispatch.
//!
//! The full registry *including* the Steiner construction lives in
//! `bmst-steiner` (`full_registry`), since this crate cannot depend on it.

use bmst_geom::Point;
use bmst_tree::RoutingTree;

use crate::{BmstError, ProblemContext};

/// How a construction's routing cost relates to the optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// A reference construction (MST, SPT, BPRIM, BRBC) the paper's tables
    /// normalise against; not designed to minimise bounded-tree cost.
    Baseline,
    /// A single-pass constructive heuristic (BKRUS, AHHK).
    Heuristic,
    /// A heuristic refined by local search (BKH2).
    LocalSearch,
    /// Provably cost-optimal among feasible trees, at exponential worst
    /// case (Gabow enumeration, deep BKEX exchange search).
    Exact,
}

/// What kind of path-length guarantee a construction offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// Every source-sink path lies in the global window
    /// `[lower, (1 + eps) * R]`.
    Window,
    /// A per-node bound `path(S, v) <= (1 + eps) * dist(S, v)`.
    PerNode,
    /// A soft trade-off parameter with no hard guarantee (AHHK).
    Soft,
    /// No path-length control at all (MST, SPT).
    None,
    /// An Elmore *delay* bound instead of a wirelength bound.
    Delay,
}

/// Static metadata describing a registered [`TreeBuilder`].
#[derive(Debug, Clone, Copy)]
pub struct BuilderDescriptor {
    /// Stable kebab-case identifier (`bkrus`, `prim-dijkstra`, ...): the
    /// name the CLI's `--algorithm` flag resolves.
    pub name: &'static str,
    /// Accepted alternative names (also kebab-case).
    pub aliases: &'static [&'static str],
    /// One-line human-readable description for `--help`-style tables.
    pub summary: &'static str,
    /// Cost-optimality class.
    pub cost_class: CostClass,
    /// The kind of path-length guarantee.
    pub bound: BoundKind,
    /// Whether the construction works in any metric (L1/L2); `false` means
    /// rectilinear-only.
    pub metric: bool,
    /// Whether the construction reads [`ProblemContext::elmore_params`].
    pub elmore: bool,
    /// Whether the construction may introduce Steiner points (its geometry
    /// has more points than the net has terminals).
    pub steiner: bool,
    /// For instrumented/diagnostic variants: the name of the builder whose
    /// tree this one reproduces bit-for-bit.
    pub variant_of: Option<&'static str>,
}

/// A routing tree plus the point set it embeds into.
///
/// For spanning constructions the points are exactly the net's terminals;
/// Steiner constructions append their added points after the terminals, so
/// `points[num_terminals..]` are the Steiner points.
#[derive(Debug, Clone)]
pub struct BuiltGeometry {
    /// The constructed tree over `points`.
    pub tree: RoutingTree,
    /// Terminal coordinates first, then any Steiner points.
    pub points: Vec<Point>,
    /// How many leading entries of `points` are net terminals.
    pub num_terminals: usize,
}

/// A tree construction that can run against a shared [`ProblemContext`].
pub trait TreeBuilder: Sync {
    /// Static metadata: name, aliases, capability flags.
    fn descriptor(&self) -> &BuilderDescriptor;

    /// Constructs a tree for the context's net under its constraint.
    ///
    /// # Errors
    ///
    /// Construction-specific [`BmstError`]s: infeasibility, invalid
    /// parameters, or (for the exact enumeration) a tree budget overrun.
    fn build(&self, cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError>;

    /// Like [`TreeBuilder::build`], but also returns the embedded point
    /// set. Spanning builders return the net's terminals unchanged; the
    /// Steiner builder overrides this to expose its added points.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TreeBuilder::build`].
    // analyze: allow(panic-reach) — raw trait API; registry consumers go through try_build, which catch_unwinds into BmstError::Internal
    fn build_geometry(&self, cx: &ProblemContext<'_>) -> Result<BuiltGeometry, BmstError> {
        let tree = self.build(cx)?;
        Ok(BuiltGeometry {
            tree,
            points: cx.net().points().to_vec(),
            num_terminals: cx.net().len(),
        })
    }

    /// Fault-isolated [`TreeBuilder::build`]: the routing pipeline's entry
    /// point, guaranteeing a typed [`BmstError`] for every failure mode.
    ///
    /// Two guarantees on top of `build`:
    ///
    /// 1. **No panics escape.** The construction runs under
    ///    [`std::panic::catch_unwind`]; a panic becomes
    ///    [`BmstError::Internal`] carrying the panic message, so one buggy
    ///    net cannot take down a routing worker.
    /// 2. **No silently out-of-window trees.** The returned tree is checked
    ///    against the context's geometric window *uniformly* — including
    ///    builders whose native guarantee is soft ([`BoundKind::Soft`]),
    ///    absent ([`BoundKind::None`]), or in the delay domain
    ///    ([`BoundKind::Delay`], where the geometric window derived from
    ///    `eps` acts as the proxy). A violating tree is rejected as
    ///    [`BmstError::Infeasible`], carrying the tightest feasible `eps`
    ///    when the upper bound is what failed, so the degradation ladder
    ///    can jump straight to a feasible rung.
    ///
    /// `build` itself stays unguarded and unchecked: direct callers (and
    /// the bit-parity tests) see the construction's raw behaviour.
    ///
    /// # Errors
    ///
    /// Everything `build` returns, plus [`BmstError::Internal`] for caught
    /// panics and [`BmstError::Infeasible`] for out-of-window trees.
    fn try_build(&self, cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
        let tree = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.build(cx))) {
            Ok(result) => result?,
            Err(payload) => {
                return Err(BmstError::internal(format!(
                    "builder '{}' panicked: {}",
                    self.descriptor().name,
                    panic_message(payload.as_ref())
                )));
            }
        };
        check_window(cx, tree)
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// The uniform post-construction window check behind
/// [`TreeBuilder::try_build`]: every sink's source path must lie in the
/// context's window, else the tree is rejected as
/// [`BmstError::Infeasible`].
fn check_window(cx: &ProblemContext<'_>, tree: RoutingTree) -> Result<RoutingTree, BmstError> {
    let net = cx.net();
    let constraint = cx.constraint();
    let mut connected = 1; // the source
    let mut lower_violated = false;
    let mut worst_path = 0.0_f64;
    for v in net.sinks() {
        cx.check_cancelled()?;
        let path = tree.dist_from_root(v);
        if constraint.admits(path) {
            connected += 1;
        } else if path < constraint.lower {
            lower_violated = true;
        }
        worst_path = worst_path.max(path);
    }
    if connected == net.len() {
        return Ok(tree);
    }
    // Relaxing eps raises only the upper bound, so the hint is meaningful
    // only when no sink sits below the lower bound. `worst_path / R - 1`
    // is the smallest eps whose window admits this very tree.
    let r = net.source_radius();
    let min_feasible_eps = if lower_violated || r <= 0.0 {
        None
    } else {
        Some((worst_path / r - 1.0).max(0.0))
    };
    Err(BmstError::Infeasible {
        connected,
        total: net.len(),
        min_feasible_eps,
    })
}

/// Unit structs implementing [`TreeBuilder`] for every construction in this
/// crate. The registry holds one static instance of each with its default
/// configuration; benchmarks instantiate their own (e.g. a
/// [`Gabow`](builders::Gabow) with a smaller tree budget).
pub mod builders {
    use super::{BoundKind, BuilderDescriptor, CostClass, TreeBuilder};
    use crate::bkex::BkexConfig;
    use crate::bkrus::EdgeDecision;
    use crate::gabow::GabowConfig;
    use crate::{BmstError, ProblemContext};
    use bmst_obs::Field;
    use bmst_tree::RoutingTree;

    /// BKRUS (§3.1): the bounded-Kruskal heuristic.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Bkrus;

    impl TreeBuilder for Bkrus {
        fn descriptor(&self) -> &BuilderDescriptor {
            &BuilderDescriptor {
                name: "bkrus",
                aliases: &[],
                summary: "bounded-Kruskal heuristic (paper §3.1)",
                cost_class: CostClass::Heuristic,
                bound: BoundKind::Window,
                metric: true,
                elmore: false,
                steiner: false,
                variant_of: None,
            }
        }

        // analyze: allow(panic-reach) — raw trait API; registry consumers go through try_build, which catch_unwinds into BmstError::Internal
        fn build(&self, cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
            crate::bkrus::run(cx, None)
        }
    }

    /// BKRUS with per-edge decision tracing (the Figure 4 walk-through):
    /// bit-identical trees to [`Bkrus`], with every accept/reject emitted
    /// as a `bkrus.trace` observability event.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct BkrusTrace;

    impl TreeBuilder for BkrusTrace {
        fn descriptor(&self) -> &BuilderDescriptor {
            &BuilderDescriptor {
                name: "bkrus-trace",
                aliases: &[],
                summary: "BKRUS emitting per-edge decision trace events",
                cost_class: CostClass::Heuristic,
                bound: BoundKind::Window,
                metric: true,
                elmore: false,
                steiner: false,
                variant_of: Some("bkrus"),
            }
        }

        // analyze: allow(panic-reach) — raw trait API; registry consumers go through try_build, which catch_unwinds into BmstError::Internal
        fn build(&self, cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
            let mut trace = Vec::new();
            let tree = crate::bkrus::run(cx, Some(&mut trace))?;
            if bmst_obs::enabled() {
                for ev in &trace {
                    let decision = match ev.decision {
                        EdgeDecision::Accepted => "accepted",
                        EdgeDecision::RejectedCycle => "rejected-cycle",
                        EdgeDecision::RejectedBound => "rejected-bound",
                    };
                    bmst_obs::event(
                        "bkrus.trace",
                        &[
                            ("u", Field::from(ev.edge.u)),
                            ("v", Field::from(ev.edge.v)),
                            ("weight", Field::from(ev.edge.weight)),
                            ("decision", Field::from(decision)),
                        ],
                    );
                }
            }
            Ok(tree)
        }
    }

    /// BKH2 (§5): BKRUS refined by depth-2 negative-sum-exchanges.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Bkh2;

    impl TreeBuilder for Bkh2 {
        fn descriptor(&self) -> &BuilderDescriptor {
            &BuilderDescriptor {
                name: "bkh2",
                aliases: &[],
                summary: "BKRUS + depth-2 negative-sum-exchange local search (§5)",
                cost_class: CostClass::LocalSearch,
                bound: BoundKind::Window,
                metric: true,
                elmore: false,
                steiner: false,
                variant_of: None,
            }
        }

        // analyze: allow(panic-reach) — raw trait API; registry consumers go through try_build, which catch_unwinds into BmstError::Internal
        fn build(&self, cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
            crate::bkh2::run(cx)
        }
    }

    /// BKEX (§5): iterated negative-sum-exchange search over a BKRUS start.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Bkex {
        /// Exchange-search configuration (depth budget).
        pub config: BkexConfig,
    }

    impl TreeBuilder for Bkex {
        fn descriptor(&self) -> &BuilderDescriptor {
            &BuilderDescriptor {
                name: "bkex",
                aliases: &[],
                summary: "iterated negative-sum-exchange search, depth 4 (§5)",
                cost_class: CostClass::Exact,
                bound: BoundKind::Window,
                metric: true,
                elmore: false,
                steiner: false,
                variant_of: None,
            }
        }

        // analyze: allow(panic-reach) — raw trait API; registry consumers go through try_build, which catch_unwinds into BmstError::Internal
        fn build(&self, cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
            crate::bkex::run(cx, self.config)
        }
    }

    /// Gabow enumeration (§4): spanning trees in nondecreasing cost order.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Gabow {
        /// Enumeration configuration (tree budget, lemma preprocessing).
        pub config: GabowConfig,
    }

    impl TreeBuilder for Gabow {
        fn descriptor(&self) -> &BuilderDescriptor {
            &BuilderDescriptor {
                name: "gabow",
                aliases: &["bmst-g"],
                summary: "exact enumeration in nondecreasing cost order (§4)",
                cost_class: CostClass::Exact,
                bound: BoundKind::Window,
                metric: true,
                elmore: false,
                steiner: false,
                variant_of: None,
            }
        }

        // analyze: allow(panic-reach) — raw trait API; registry consumers go through try_build, which catch_unwinds into BmstError::Internal
        fn build(&self, cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
            crate::gabow::run(cx, self.config).map(|o| o.tree)
        }
    }

    /// BPRIM (§2): the bounded-Prim baseline of Cong et al.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Bprim;

    impl TreeBuilder for Bprim {
        fn descriptor(&self) -> &BuilderDescriptor {
            &BuilderDescriptor {
                name: "bprim",
                aliases: &[],
                summary: "bounded-Prim baseline of Cong et al. (§2)",
                cost_class: CostClass::Baseline,
                bound: BoundKind::PerNode,
                metric: true,
                elmore: false,
                steiner: false,
                variant_of: None,
            }
        }

        // analyze: allow(panic-reach) — raw trait API; registry consumers go through try_build, which catch_unwinds into BmstError::Internal
        fn build(&self, cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
            crate::bprim::run(cx)
        }
    }

    /// BRBC (§2): the bounded-radius-bounded-cost baseline of Cong et al.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Brbc;

    impl TreeBuilder for Brbc {
        fn descriptor(&self) -> &BuilderDescriptor {
            &BuilderDescriptor {
                name: "brbc",
                aliases: &[],
                summary: "bounded-radius-bounded-cost baseline of Cong et al. (§2)",
                cost_class: CostClass::Baseline,
                bound: BoundKind::Window,
                metric: true,
                elmore: false,
                steiner: false,
                variant_of: None,
            }
        }

        // analyze: allow(panic-reach) — raw trait API; registry consumers go through try_build, which catch_unwinds into BmstError::Internal
        fn build(&self, cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
            crate::brbc::run(cx)
        }
    }

    /// AHHK (§2): the Prim/Dijkstra blend, parameterised by
    /// [`ProblemContext::pd_blend`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct PrimDijkstra;

    impl TreeBuilder for PrimDijkstra {
        fn descriptor(&self) -> &BuilderDescriptor {
            &BuilderDescriptor {
                name: "prim-dijkstra",
                aliases: &["pd", "ahhk"],
                summary: "AHHK Prim/Dijkstra blend, no hard bound (§2)",
                cost_class: CostClass::Heuristic,
                bound: BoundKind::Soft,
                metric: true,
                elmore: false,
                steiner: false,
                variant_of: None,
            }
        }

        // analyze: allow(panic-reach) — raw trait API; registry consumers go through try_build, which catch_unwinds into BmstError::Internal
        fn build(&self, cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
            crate::ahhk::run(cx)
        }
    }

    /// Elmore-BKRUS (§3.2): BKRUS under the Elmore delay model, reading
    /// [`ProblemContext::elmore_params`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct ElmoreBkrus;

    impl TreeBuilder for ElmoreBkrus {
        fn descriptor(&self) -> &BuilderDescriptor {
            &BuilderDescriptor {
                name: "elmore-bkrus",
                aliases: &[],
                summary: "BKRUS bounding Elmore delay instead of wirelength (§3.2)",
                cost_class: CostClass::Heuristic,
                bound: BoundKind::Delay,
                metric: true,
                elmore: true,
                steiner: false,
                variant_of: None,
            }
        }

        // analyze: allow(panic-reach) — raw trait API; registry consumers go through try_build, which catch_unwinds into BmstError::Internal
        fn build(&self, cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
            crate::elmore_bkrus::run(cx)
        }
    }

    /// The minimum spanning tree baseline (the `eps = inf` regime).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Mst;

    impl TreeBuilder for Mst {
        fn descriptor(&self) -> &BuilderDescriptor {
            &BuilderDescriptor {
                name: "mst",
                aliases: &[],
                summary: "minimum spanning tree baseline (unbounded paths)",
                cost_class: CostClass::Baseline,
                bound: BoundKind::None,
                metric: true,
                elmore: false,
                steiner: false,
                variant_of: None,
            }
        }

        // analyze: allow(panic-reach) — raw trait API; registry consumers go through try_build, which catch_unwinds into BmstError::Internal
        fn build(&self, cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
            Ok(crate::baselines::mst_tree_cx(cx))
        }
    }

    /// The shortest path tree baseline (the `eps = 0` cost ceiling).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Spt;

    impl TreeBuilder for Spt {
        fn descriptor(&self) -> &BuilderDescriptor {
            &BuilderDescriptor {
                name: "spt",
                aliases: &[],
                summary: "shortest path tree baseline (source star)",
                cost_class: CostClass::Baseline,
                bound: BoundKind::None,
                metric: true,
                elmore: false,
                steiner: false,
                variant_of: None,
            }
        }

        // analyze: allow(panic-reach) — raw trait API; registry consumers go through try_build, which catch_unwinds into BmstError::Internal
        fn build(&self, cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
            Ok(crate::baselines::spt_tree(cx.net()))
        }
    }
}

static BKRUS: builders::Bkrus = builders::Bkrus;
static BKRUS_TRACE: builders::BkrusTrace = builders::BkrusTrace;
static BKH2: builders::Bkh2 = builders::Bkh2;
static BKEX: builders::Bkex = builders::Bkex {
    config: crate::bkex::BkexConfig { max_depth: 4 },
};
static GABOW: builders::Gabow = builders::Gabow {
    config: crate::gabow::GabowConfig {
        max_trees: 2_000_000,
        use_pruning: true,
    },
};
static BPRIM: builders::Bprim = builders::Bprim;
static BRBC: builders::Brbc = builders::Brbc;
static PRIM_DIJKSTRA: builders::PrimDijkstra = builders::PrimDijkstra;
static ELMORE_BKRUS: builders::ElmoreBkrus = builders::ElmoreBkrus;
static MST: builders::Mst = builders::Mst;
static SPT: builders::Spt = builders::Spt;

static REGISTRY: [&dyn TreeBuilder; 11] = [
    &BKRUS,
    &BKRUS_TRACE,
    &BKH2,
    &BKEX,
    &GABOW,
    &BPRIM,
    &BRBC,
    &PRIM_DIJKSTRA,
    &ELMORE_BKRUS,
    &MST,
    &SPT,
];

/// Every spanning-tree builder in this crate, with its default
/// configuration. The Steiner construction is appended by
/// `bmst_steiner::full_registry`.
pub fn registry() -> &'static [&'static dyn TreeBuilder] {
    &REGISTRY
}

/// Resolves `name` against [`registry`] descriptor names and aliases.
pub fn find_builder(name: &str) -> Option<&'static dyn TreeBuilder> {
    registry().iter().copied().find(|b| {
        let d = b.descriptor();
        d.name == name || d.aliases.contains(&name)
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use bmst_geom::Net;

    fn net() -> Net {
        Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(8.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(6.0, 1.0),
            Point::new(7.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<&str> = Vec::new();
        for b in registry() {
            let d = b.descriptor();
            names.push(d.name);
            names.extend(d.aliases);
        }
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate name/alias: {names:?}");
    }

    #[test]
    fn find_builder_resolves_names_and_aliases() {
        assert_eq!(find_builder("bkrus").unwrap().descriptor().name, "bkrus");
        assert_eq!(
            find_builder("pd").unwrap().descriptor().name,
            "prim-dijkstra"
        );
        assert_eq!(find_builder("bmst-g").unwrap().descriptor().name, "gabow");
        assert!(find_builder("nope").is_none());
    }

    #[test]
    fn every_builder_spans_on_a_loose_bound() {
        let net = net();
        let cx = ProblemContext::new(&net, 0.5).unwrap();
        for b in registry() {
            let tree = b.build(&cx).unwrap();
            assert!(tree.is_spanning(), "{}", b.descriptor().name);
        }
    }

    #[test]
    fn trace_variant_matches_plain_bkrus() {
        let net = net();
        let cx = ProblemContext::new(&net, 0.2).unwrap();
        let plain = find_builder("bkrus").unwrap().build(&cx).unwrap();
        let traced = find_builder("bkrus-trace").unwrap().build(&cx).unwrap();
        assert_eq!(plain.edges(), traced.edges());
    }

    #[test]
    fn try_build_matches_build_when_feasible() {
        let net = net();
        let cx = ProblemContext::new(&net, 0.5).unwrap();
        for b in registry() {
            let direct = b.build(&cx).unwrap();
            let guarded = b.try_build(&cx).unwrap();
            assert_eq!(direct.edges(), guarded.edges(), "{}", b.descriptor().name);
        }
    }

    #[test]
    fn try_build_rejects_unreachable_window_for_every_builder() {
        // No tree over these three collinear points can give every sink a
        // source path >= 15 (the longest possible path is 10.2), so the
        // two-sided window [15, 16] is infeasible for every construction —
        // including the unbounded baselines, which try_build must reject
        // rather than hand back a silently out-of-window tree.
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.1, 0.0),
        ])
        .unwrap();
        let constraint = crate::PathConstraint::explicit(15.0, 16.0).unwrap();
        let cx = ProblemContext::with_constraint(&net, constraint);
        for b in registry() {
            let res = b.try_build(&cx);
            assert!(
                matches!(res, Err(BmstError::Infeasible { .. })),
                "{}: {res:?}",
                b.descriptor().name
            );
        }
    }

    #[test]
    fn try_build_converts_panics_to_internal() {
        struct Panicky;
        impl TreeBuilder for Panicky {
            fn descriptor(&self) -> &BuilderDescriptor {
                &BuilderDescriptor {
                    name: "panicky",
                    aliases: &[],
                    summary: "always panics",
                    cost_class: CostClass::Baseline,
                    bound: BoundKind::None,
                    metric: true,
                    elmore: false,
                    steiner: false,
                    variant_of: None,
                }
            }
            fn build(&self, _cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
                panic!("synthetic invariant violation")
            }
        }
        let net = net();
        let cx = ProblemContext::new(&net, 0.5).unwrap();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the expected panic quiet
        let res = Panicky.try_build(&cx);
        std::panic::set_hook(prev);
        match res {
            Err(BmstError::Internal { detail }) => {
                assert!(detail.contains("panicky"), "{detail}");
                assert!(detail.contains("synthetic invariant violation"), "{detail}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
    }

    #[test]
    fn try_build_infeasible_carries_min_feasible_eps_hint() {
        // MST attaches B through A (edge weight 6 < 14), giving B a path of
        // 16 against dist 14; under eps = 0.1 the window upper is 15.4, so
        // try_build rejects the tree and reports 16/14 - 1 as the tightest
        // feasible eps.
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(9.0, 5.0),
        ])
        .unwrap();
        let cx = ProblemContext::new(&net, 0.1).unwrap();
        let mst = find_builder("mst").unwrap();
        let err = mst.try_build(&cx).unwrap_err();
        let hint = err
            .min_feasible_eps()
            .expect("upper-bound failure carries a hint");
        assert!((hint - (16.0 / 14.0 - 1.0)).abs() < 1e-12, "{hint}");
        // The hinted eps admits the same tree.
        let relaxed = ProblemContext::new(&net, hint).unwrap();
        assert!(mst.try_build(&relaxed).is_ok());
    }

    #[test]
    fn build_geometry_defaults_to_terminals() {
        let net = net();
        let cx = ProblemContext::new(&net, 0.5).unwrap();
        let g = find_builder("mst").unwrap().build_geometry(&cx).unwrap();
        assert_eq!(g.points, net.points().to_vec());
        assert_eq!(g.num_terminals, net.len());
    }
}
