//! BPRIM: the bounded-Prim baseline of Cong et al. (paper §2).

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use bmst_geom::{le_tol, NeighborIndex, Net};
use bmst_graph::Edge;
use bmst_tree::RoutingTree;

use crate::{BmstError, PathConstraint, ProblemContext};

/// Constructs a bounded path length spanning tree with the BPRIM heuristic
/// of Cong et al. ("Provably Good Performance-Driven Global Routing",
/// IEEE TCAD 1992), the baseline the paper compares against.
///
/// BPRIM grows a single tree from the source, Prim-style: at each step it
/// adds the cheapest edge `(u, v)` with `u` in the tree and `v` outside such
/// that the new node meets its *per-node* radius bound,
/// `path(S, u) + dist(u, v) <= (1 + eps) * dist(S, v)` (Cong et al.'s
/// formulation; it implies the global bound `(1 + eps) * R`). A direct
/// source edge is always admissible, so the construction always completes —
/// but, as the paper's Figure 1 shows, the per-node budget is quickly
/// exhausted along grown paths, far-away clusters end up star-connected to
/// the source, and the worst-case performance ratio is unbounded.
///
/// `O(V^2)`.
///
/// # Errors
///
/// [`BmstError::InvalidEpsilon`] for negative/NaN `eps`.
///
/// # Examples
///
/// ```
/// use bmst_core::{bkrus, bprim};
/// use bmst_geom::{Net, Point};
///
/// let net = Net::with_source_first(vec![
///     Point::new(0.0, 0.0),
///     Point::new(6.0, 0.0),
///     Point::new(6.0, 1.0),
/// ])?;
/// let t = bprim(&net, 0.2)?;
/// assert!(t.source_radius() <= 1.2 * net.source_radius() + 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn bprim(net: &Net, eps: f64) -> Result<RoutingTree, BmstError> {
    // Validates eps; the per-node bounds below are tighter than
    // constraint.upper.
    let cx = ProblemContext::new(net, eps)?;
    run(&cx)
}

/// Context-based BPRIM driver; the per-node budget uses the context's raw
/// `eps`, the audit its validated constraint. Dispatches on the context's
/// edge supply: the dense path scans the full distance matrix each step,
/// the sparse path pulls nearest-neighbor candidates from the grid index
/// through a per-tree-node candidate heap. Both produce bit-identical
/// trees (the heap resolves ties with the same `(weight, u, v)` order the
/// dense scan uses).
pub(crate) fn run(cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
    let net = cx.net();
    // BPRIM/BRBC promise only the upper bound; audit with the lower
    // bound dropped so a two-sided window is not mis-attributed to them.
    let constraint = PathConstraint {
        lower: 0.0,
        upper: cx.constraint().upper,
    };
    let n = net.len();
    let s = net.source();
    if n == 1 {
        let tree = RoutingTree::from_edges(1, s, [])?;
        crate::audit::debug_audit(net, &tree, Some(&constraint));
        return Ok(tree);
    }
    let edges = if cx.sparse_active() {
        run_sparse(cx)?
    } else {
        run_dense(cx)?
    };
    let tree = RoutingTree::from_edges(n, s, edges)?;
    crate::audit::debug_audit(net, &tree, Some(&constraint));
    Ok(tree)
}

/// The original dense scan: every step examines all (tree node, outside
/// node) pairs through the distance matrix.
// analyze: complexity(n^3)
fn run_dense(cx: &ProblemContext<'_>) -> Result<Vec<Edge>, BmstError> {
    let net = cx.net();
    let eps = cx.eps();
    let n = net.len();
    let s = net.source();
    let d = cx.matrix();

    let mut in_tree = vec![false; n];
    let mut path_s = vec![0.0; n]; // path(S, x) for tree nodes
    in_tree[s] = true;
    let mut edges: Vec<Edge> = Vec::with_capacity(n - 1);
    let obs_span = bmst_obs::span("bprim");
    let mut scanned = 0u64;
    let mut bound_rejects = 0u64;

    for _ in 1..n {
        // Each attachment step is an O(n^2) scan, coarse enough to poll
        // the cancellation token every iteration.
        cx.check_cancelled()?;
        // Cheapest feasible attachment. Deterministic tie-break: lowest
        // (weight, u, v).
        let mut best: Option<(f64, usize, usize)> = None;
        for u in 0..n {
            if !in_tree[u] {
                continue;
            }
            for v in 0..n {
                if in_tree[v] || v == u {
                    continue;
                }
                let w = d[(u, v)];
                scanned += 1;
                let node_bound = if eps.is_infinite() {
                    f64::INFINITY
                } else {
                    (1.0 + eps) * d[(s, v)]
                };
                if !le_tol(path_s[u] + w, node_bound) {
                    bound_rejects += 1;
                    continue;
                }
                let cand = (w, u, v);
                let better = match best {
                    None => true,
                    Some(b) => (cand.0, cand.1, cand.2) < (b.0, b.1, b.2),
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        match best {
            Some((w, u, v)) => {
                in_tree[v] = true;
                path_s[v] = path_s[u] + w;
                edges.push(Edge::new(u, v, w));
            }
            None => {
                // Unreachable for eps >= 0 (direct source edges are always
                // feasible); report rather than assert.
                let connected = in_tree.iter().filter(|&&b| b).count();
                return Err(BmstError::Infeasible {
                    connected,
                    total: n,
                    min_feasible_eps: None,
                });
            }
        }
    }

    if bmst_obs::enabled() {
        bmst_obs::counter("bprim.attachments_scanned", scanned);
        bmst_obs::counter("bprim.rejected_bound", bound_rejects);
    }
    drop(obs_span);

    Ok(edges)
}

/// A candidate attachment `(w, u, v)`: tree node `u` offering outside
/// node `v` at distance `w`. `Ord` is the dense scan's exact tie-break —
/// weight (`total_cmp`), then `u`, then `v` — so the heap's minimum is
/// always the pair the dense scan would have chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    w: f64,
    u: usize,
    v: usize,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.w
            .total_cmp(&other.w)
            .then(self.u.cmp(&other.u))
            .then(self.v.cmp(&other.v))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Expanding nearest-neighbor enumeration for one tree node: yields all
/// other terminals in exact increasing `(dist, id)` order by growing a
/// half-open weight window over the grid index. Each refill appends a
/// locally-sorted batch whose weights all exceed the previous window's
/// cap, so the concatenated list stays globally sorted.
struct NearestSearch {
    list: Vec<(f64, usize)>,
    cursor: usize,
    lo: f64,
    hi: f64,
    exhausted: bool,
}

impl NearestSearch {
    fn new(index: &NeighborIndex<'_>) -> Self {
        let diameter = index.diameter_bound();
        let first = index
            .cell_size()
            .max(diameter * 1e-6)
            .max(f64::MIN_POSITIVE);
        NearestSearch {
            list: Vec::new(),
            cursor: 0,
            lo: -1.0,
            hi: first.min(diameter),
            exhausted: false,
        }
    }

    /// The enumeration's next `(dist, id)` pair, expanding the window on
    /// demand; `None` once every other terminal has been yielded.
    // analyze: allow(cancel-liveness) — refill is bounded by annulus doubling; the BPRIM attachment loop polls per iteration
    fn next(&mut self, origin: usize, index: &NeighborIndex<'_>) -> Option<(f64, usize)> {
        while self.cursor >= self.list.len() {
            if self.exhausted {
                return None;
            }
            let filled = self.list.len();
            index.neighbors_in_annulus(origin, self.lo, self.hi, &mut self.list);
            self.list[filled..].sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            if self.hi >= index.diameter_bound() {
                self.exhausted = true;
            } else {
                self.lo = self.hi;
                self.hi = (self.hi * 2.0).min(index.diameter_bound());
            }
        }
        let pair = self.list[self.cursor];
        self.cursor += 1;
        Some(pair)
    }
}

/// The sparse path: a min-heap holds, for every tree node `u`, `u`'s
/// cheapest not-yet-dismissed outside neighbor. Stale candidates (target
/// already absorbed) advance `u`'s enumeration and retry; bound-infeasible
/// candidates are dismissed permanently — `path(S, u)` is fixed once `u`
/// joins the tree and `v`'s per-node bound is fixed while `v` is outside,
/// so an infeasible pair can never become feasible (the dense scan
/// re-checks and re-rejects it every step; dismissing it is equivalent).
// analyze: complexity(n^2)
fn run_sparse(cx: &ProblemContext<'_>) -> Result<Vec<Edge>, BmstError> {
    let net = cx.net();
    let eps = cx.eps();
    let n = net.len();
    let s = net.source();
    let index = cx.neighbor_index();
    let dist_s: Vec<f64> = (0..n).map(|v| cx.dist(s, v)).collect();

    let mut in_tree = vec![false; n];
    let mut path_s = vec![0.0; n]; // path(S, x) for tree nodes
    in_tree[s] = true;
    let mut searches: Vec<Option<NearestSearch>> = (0..n).map(|_| None).collect();
    let mut heap: BinaryHeap<Reverse<Cand>> = BinaryHeap::with_capacity(n);
    let mut edges: Vec<Edge> = Vec::with_capacity(n - 1);
    let obs_span = bmst_obs::span("bprim");
    let mut scanned = 0u64;
    let mut bound_rejects = 0u64;

    // Offers a tree node's next enumerated neighbor to the heap.
    let offer = |u: usize,
                 searches: &mut Vec<Option<NearestSearch>>,
                 heap: &mut BinaryHeap<Reverse<Cand>>| {
        if let Some(search) = &mut searches[u] {
            if let Some((w, v)) = search.next(u, index) {
                heap.push(Reverse(Cand { w, u, v }));
            }
        }
    };

    searches[s] = Some(NearestSearch::new(index));
    offer(s, &mut searches, &mut heap);

    for _ in 1..n {
        // One attachment per iteration; poll cancellation at the same
        // granularity as the dense scan.
        cx.check_cancelled()?;
        // Pop until the minimum candidate is live and feasible; by the
        // dismissal argument above it is exactly the dense scan's pick.
        let attachment = loop {
            let Some(Reverse(cand)) = heap.pop() else {
                break None;
            };
            offer(cand.u, &mut searches, &mut heap);
            if in_tree[cand.v] {
                continue; // stale: target joined through another node
            }
            scanned += 1;
            let node_bound = if eps.is_infinite() {
                f64::INFINITY
            } else {
                (1.0 + eps) * dist_s[cand.v]
            };
            if !le_tol(path_s[cand.u] + cand.w, node_bound) {
                bound_rejects += 1;
                continue; // permanently infeasible for this (u, v)
            }
            break Some(cand);
        };
        match attachment {
            Some(Cand { w, u, v }) => {
                in_tree[v] = true;
                path_s[v] = path_s[u] + w;
                edges.push(Edge::new(u, v, w));
                searches[v] = Some(NearestSearch::new(index));
                offer(v, &mut searches, &mut heap);
            }
            None => {
                // Unreachable for eps >= 0 (direct source edges are always
                // feasible); report rather than assert.
                let connected = in_tree.iter().filter(|&&b| b).count();
                return Err(BmstError::Infeasible {
                    connected,
                    total: n,
                    min_feasible_eps: None,
                });
            }
        }
    }

    if bmst_obs::enabled() {
        bmst_obs::counter("bprim.attachments_scanned", scanned);
        bmst_obs::counter("bprim.rejected_bound", bound_rejects);
    }
    drop(obs_span);

    Ok(edges)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::{bkrus, mst_tree};
    use bmst_geom::Point;

    fn cluster_net() -> Net {
        // Source far to the left; a tight cluster of sinks on the right.
        let mut pts = vec![Point::new(0.0, 0.0)];
        for i in 0..6 {
            pts.push(Point::new(
                20.0 + 0.2 * (i % 3) as f64,
                0.2 * (i / 3) as f64,
            ));
        }
        Net::with_source_first(pts).unwrap()
    }

    #[test]
    fn respects_bound() {
        let net = cluster_net();
        for eps in [0.0, 0.1, 0.3, 1.0] {
            let t = bprim(&net, eps).unwrap();
            assert!(t.is_spanning());
            assert!(t.source_radius() <= (1.0 + eps) * net.source_radius() + 1e-9);
        }
    }

    #[test]
    fn infinite_eps_matches_mst() {
        let net = cluster_net();
        let t = bprim(&net, f64::INFINITY).unwrap();
        assert!((t.cost() - mst_tree(&net).cost()).abs() < 1e-9);
    }

    #[test]
    fn bkrus_dominates_bprim_on_average() {
        // The paper's Table 4: BKRUS's average perf ratio beats BPRIM's at
        // every net size and eps. Aggregate over seeded random nets; single
        // instances can go either way (BPRIM occasionally wins a layout).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for eps in [0.0, 0.2] {
            let mut pb_total = 0.0;
            let mut bk_total = 0.0;
            for seed in 0..20 {
                let mut rng = StdRng::seed_from_u64(seed);
                let pts = (0..10)
                    .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                    .collect();
                let net = Net::with_source_first(pts).unwrap();
                pb_total += bprim(&net, eps).unwrap().cost();
                bk_total += bkrus(&net, eps).unwrap().cost();
            }
            assert!(
                bk_total < pb_total,
                "eps {eps}: BKRUS total {bk_total} vs BPRIM total {pb_total}"
            );
        }
    }

    #[test]
    fn bprim_per_node_bound_holds() {
        // Cong et al.'s invariant is per sink, stronger than the global
        // radius bound.
        let net = cluster_net();
        for eps in [0.0, 0.1, 0.5] {
            let t = bprim(&net, eps).unwrap();
            for v in net.sinks() {
                assert!(
                    t.dist_from_root(v) <= (1.0 + eps) * net.dist(net.source(), v) + 1e-9,
                    "eps {eps} node {v}"
                );
            }
        }
    }

    #[test]
    fn negative_eps_rejected() {
        assert!(matches!(
            bprim(&cluster_net(), -1.0),
            Err(BmstError::InvalidEpsilon { .. })
        ));
    }

    #[test]
    fn trivial_nets() {
        let net = Net::with_source_first(vec![Point::new(0.0, 0.0)]).unwrap();
        assert_eq!(bprim(&net, 0.0).unwrap().cost(), 0.0);
        let net = Net::with_source_first(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).unwrap();
        assert_eq!(bprim(&net, 0.0).unwrap().cost(), 2.0);
    }

    #[test]
    fn cost_at_least_mst() {
        let net = cluster_net();
        let mst = mst_tree(&net).cost();
        for eps in [0.0, 0.2, 0.5] {
            assert!(bprim(&net, eps).unwrap().cost() + 1e-9 >= mst);
        }
    }
}
