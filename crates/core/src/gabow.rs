//! BMST_G: exact bounded path length MST by enumerating spanning trees in
//! nondecreasing cost order (paper §4, after Gabow 1977).
//!
//! Gabow's algorithm generates all spanning trees in order of increasing
//! cost via minimal T-exchanges; the first generated tree that satisfies the
//! path-length bound is an optimal BMST. We implement the standard
//! partition-refinement formulation of that enumeration: a priority queue of
//! subproblems `(forced edges, banned edges)`, each represented by its
//! constrained MST, popped in order of tree cost and split along the popped
//! tree's free edges. The enumeration order is exactly nondecreasing tree
//! cost, as in Gabow's method, with polynomially bounded state per queued
//! partition.
//!
//! The paper's Lemmas 4.1-4.3 shrink the search space before enumeration
//! starts and are implemented in [`preprocess_edges`].

use bmst_geom::Net;
use bmst_graph::{complete_edges, Edge, SpanningTreeEnumerator};
use bmst_tree::RoutingTree;

use crate::{BmstError, PathConstraint, ProblemContext};

/// Configuration for the exact enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GabowConfig {
    /// Maximum number of spanning trees to examine before giving up with
    /// [`BmstError::TreeLimitExceeded`]. The paper reports its Gabow
    /// implementation failing with memory overflow beyond ~15 sinks; the
    /// budget turns that failure mode into a clean error.
    pub max_trees: usize,
    /// Apply the paper's Lemma 4.1-4.3 (and 6.1) edge preprocessing before
    /// enumerating. On by default; disabling it exists for the ablation
    /// benchmark that measures how much the lemmas shrink the search.
    pub use_pruning: bool,
}

impl Default for GabowConfig {
    fn default() -> Self {
        GabowConfig {
            max_trees: 2_000_000,
            use_pruning: true,
        }
    }
}

/// Result of a successful exact search.
#[derive(Debug, Clone)]
pub struct GabowOutcome {
    /// The optimal bounded path length spanning tree.
    pub tree: RoutingTree,
    /// How many spanning trees were examined (in nondecreasing cost order)
    /// before the first feasible one appeared.
    pub trees_examined: usize,
}

/// Edge preprocessing per the paper's Lemmas 4.1, 4.2, 4.3 (and 6.1 when a
/// lower bound is active).
///
/// Returns `(kept, forced)`:
///
/// * Lemma 4.1 — a sink-sink edge strictly heavier than both endpoints'
///   direct source edges cannot appear in an optimal solution → dropped.
///   (Skipped when a lower bound is active: its replacement argument can
///   shorten paths below the lower bound.)
/// * Lemma 4.2 — a sink-sink edge that would push one of its endpoints over
///   the upper bound no matter how the tree is completed → dropped.
/// * Lemma 4.3 — a sink whose every indirect route violates the upper bound
///   must use its direct source edge → forced.
/// * Lemma 6.1 — direct source edges shorter than the lower bound → dropped.
///
/// # Examples
///
/// ```
/// use bmst_core::{preprocess_edges, PathConstraint};
/// use bmst_geom::{Net, Point};
///
/// let net = Net::with_source_first(vec![
///     Point::new(0.0, 0.0),
///     Point::new(10.0, 0.0),
///     Point::new(-10.0, 0.0),
/// ])?;
/// // eps = 0: each sink must be reached directly; both source edges are
/// // forced and the sink-sink edge is eliminated.
/// let c = PathConstraint::from_eps(&net, 0.0)?;
/// let (kept, forced) = preprocess_edges(&net, c);
/// assert_eq!(forced.len(), 2);
/// assert_eq!(kept.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn preprocess_edges(net: &Net, constraint: PathConstraint) -> (Vec<Edge>, Vec<Edge>) {
    let cx = ProblemContext::with_constraint(net, constraint);
    preprocess_edges_cx(&cx)
}

/// [`preprocess_edges`] over a shared [`ProblemContext`] (reuses the cached
/// distance matrix).
// analyze: allow(cancel-liveness) — flat filter passes with no error channel; BKRUS polls per merge downstream
pub(crate) fn preprocess_edges_cx(cx: &ProblemContext<'_>) -> (Vec<Edge>, Vec<Edge>) {
    let net = cx.net();
    let constraint = *cx.constraint();
    let d = cx.matrix();
    let s = net.source();
    let upper = constraint.upper;
    let mut kept = Vec::new();
    let mut forced = Vec::new();

    for e in complete_edges(d) {
        // Lemma 6.1.
        if constraint.has_lower() && e.connects(s) && e.weight < constraint.lower {
            continue;
        }
        if !e.connects(s) && upper.is_finite() {
            let (a, b) = e.endpoints();
            // Lemma 4.2.
            let beyond_a = d[(s, a)] + e.weight > upper + bmst_geom::EPS_TOL;
            let beyond_b = d[(s, b)] + e.weight > upper + bmst_geom::EPS_TOL;
            if beyond_a && beyond_b {
                continue;
            }
            // Lemma 4.1 (upper-bound-only reasoning).
            if !constraint.has_lower()
                && e.weight > d[(s, a)] + bmst_geom::EPS_TOL
                && e.weight > d[(s, b)] + bmst_geom::EPS_TOL
            {
                continue;
            }
        }
        kept.push(e);
    }

    // Lemma 4.3: force direct source edges whose sink has no admissible
    // indirect route.
    if upper.is_finite() {
        for a in net.sinks() {
            let all_indirect_violate = (0..net.len())
                .filter(|&x| x != a && x != s)
                .all(|x| d[(s, x)] + d[(x, a)] > upper + bmst_geom::EPS_TOL);
            if all_indirect_violate {
                if let Some(&e) = kept.iter().find(|e| e.connects(s) && e.connects(a)) {
                    forced.push(e);
                }
                // If the direct edge was eliminated by Lemma 6.1 the
                // instance is infeasible; the enumeration will discover this
                // (no spanning tree can satisfy the constraints).
            }
        }
    }

    (kept, forced)
}

/// Exact optimum BMST via Gabow-style enumeration with default
/// configuration; see [`gabow_bmst_with`].
///
/// # Errors
///
/// Same conditions as [`gabow_bmst_with`].
pub fn gabow_bmst(net: &Net, eps: f64) -> Result<RoutingTree, BmstError> {
    let cx = ProblemContext::new(net, eps)?;
    run(&cx, GabowConfig::default()).map(|o| o.tree)
}

/// Exact optimum bounded path length spanning tree: spanning trees are
/// generated in nondecreasing cost order and the first one satisfying
/// `constraint` is returned. Supports two-sided constraints (§6).
///
/// # Errors
///
/// * [`BmstError::Infeasible`] when no spanning tree satisfies the
///   constraints (possible with a lower bound, or with pathological edge
///   eliminations);
/// * [`BmstError::TreeLimitExceeded`] when more than `config.max_trees`
///   trees were examined.
///
/// # Examples
///
/// ```
/// use bmst_core::{gabow_bmst_with, GabowConfig, PathConstraint};
/// use bmst_geom::{Net, Point};
///
/// let net = Net::with_source_first(vec![
///     Point::new(0.0, 0.0),
///     Point::new(5.0, 0.0),
///     Point::new(5.0, 2.0),
/// ])?;
/// let c = PathConstraint::from_eps(&net, 0.1)?;
/// let out = gabow_bmst_with(&net, c, GabowConfig::default())?;
/// assert!(out.trees_examined >= 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn gabow_bmst_with(
    net: &Net,
    constraint: PathConstraint,
    config: GabowConfig,
) -> Result<GabowOutcome, BmstError> {
    let cx = ProblemContext::with_constraint(net, constraint);
    run(&cx, config)
}

/// Context-based exact enumeration driver.
pub(crate) fn run(cx: &ProblemContext<'_>, config: GabowConfig) -> Result<GabowOutcome, BmstError> {
    let net = cx.net();
    let constraint = *cx.constraint();
    let n = net.len();
    let s = net.source();
    if n == 1 {
        let tree = RoutingTree::from_edges(1, s, [])?;
        crate::audit::debug_audit(net, &tree, Some(&constraint));
        return Ok(GabowOutcome {
            tree,
            trees_examined: 1,
        });
    }

    let _obs_span = bmst_obs::span("gabow");
    let (edges, forced_edges) = if config.use_pruning {
        preprocess_edges_cx(cx)
    } else {
        (complete_edges(cx.matrix()), Vec::new())
    };
    if bmst_obs::enabled() {
        let total = net.complete_edge_count();
        let kept = edges.len();
        bmst_obs::counter(
            "gabow.edges_pruned",
            u64::try_from(total.saturating_sub(kept)).unwrap_or(u64::MAX),
        );
        bmst_obs::counter(
            "gabow.edges_forced",
            u64::try_from(forced_edges.len()).unwrap_or(u64::MAX),
        );
    }
    let forced_pairs: Vec<(usize, usize)> = forced_edges.iter().map(Edge::endpoints).collect();

    let sinks: Vec<usize> = net.sinks().collect();
    let enumerator = SpanningTreeEnumerator::with_forced(n, edges, &forced_pairs);
    let mut examined = 0usize;
    for candidate in enumerator {
        examined += 1;
        if examined > config.max_trees {
            bmst_obs::counter("gabow.budget_exhausted", 1);
            return Err(BmstError::TreeLimitExceeded {
                limit: config.max_trees,
            });
        }
        let tree = RoutingTree::from_edges(n, s, candidate.edges)?;
        if constraint.is_satisfied_by(&tree, sinks.iter().copied()) {
            bmst_obs::counter(
                "gabow.trees_examined",
                u64::try_from(examined).unwrap_or(u64::MAX),
            );
            crate::audit::debug_audit(net, &tree, Some(&constraint));
            return Ok(GabowOutcome {
                tree,
                trees_examined: examined,
            });
        }
    }

    Err(BmstError::Infeasible {
        connected: 1,
        total: n,
        min_feasible_eps: None,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::{bkrus, mst_tree, spt_tree};
    use bmst_geom::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_net(seed: u64, n: usize) -> Net {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)))
            .collect();
        Net::with_source_first(pts).unwrap()
    }

    /// Brute force optimum by enumerating all spanning trees (tiny n).
    fn brute_force_opt(net: &Net, eps: f64) -> Option<f64> {
        let n = net.len();
        let d = net.distance_matrix();
        let all = complete_edges(&d);
        let bound = net.path_bound(eps);
        let mut best: Option<f64> = None;
        // Choose n-1 edges out of all: enumerate bitmasks.
        let m = all.len();
        for mask in 0u32..(1 << m) {
            if mask.count_ones() as usize != n - 1 {
                continue;
            }
            let chosen: Vec<Edge> = (0..m)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| all[i])
                .collect();
            if let Ok(t) = RoutingTree::from_edges(n, net.source(), chosen) {
                if t.is_spanning() && t.satisfies_upper_bound(bound, net.sinks()) {
                    let c = t.cost();
                    best = Some(best.map_or(c, |b: f64| b.min(c)));
                }
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_small_nets() {
        for seed in 0..6 {
            let net = random_net(seed, 5);
            for eps in [0.0, 0.2, 0.5, 1.0] {
                let exact = gabow_bmst(&net, eps).unwrap();
                let brute = brute_force_opt(&net, eps).unwrap();
                assert!(
                    (exact.cost() - brute).abs() < 1e-9,
                    "seed {seed} eps {eps}: gabow {} vs brute {brute}",
                    exact.cost()
                );
            }
        }
    }

    #[test]
    fn result_satisfies_bound() {
        let net = random_net(42, 8);
        for eps in [0.0, 0.3, 1.0] {
            let t = gabow_bmst(&net, eps).unwrap();
            assert!(t.source_radius() <= (1.0 + eps) * net.source_radius() + 1e-9);
        }
    }

    #[test]
    fn infinite_eps_returns_mst_immediately() {
        let net = random_net(7, 9);
        let c = PathConstraint::from_eps(&net, f64::INFINITY).unwrap();
        let out = gabow_bmst_with(&net, c, GabowConfig::default()).unwrap();
        assert_eq!(out.trees_examined, 1);
        assert!((out.tree.cost() - mst_tree(&net).cost()).abs() < 1e-9);
    }

    #[test]
    fn never_worse_than_bkrus() {
        for seed in 0..5 {
            let net = random_net(seed + 100, 7);
            for eps in [0.0, 0.2, 0.5] {
                let exact = gabow_bmst(&net, eps).unwrap().cost();
                let heur = bkrus(&net, eps).unwrap().cost();
                assert!(exact <= heur + 1e-9, "seed {seed} eps {eps}");
            }
        }
    }

    #[test]
    fn never_worse_than_spt() {
        // The SPT is always feasible for eps >= 0, so the optimum is at most
        // its cost.
        let net = random_net(3, 8);
        let exact = gabow_bmst(&net, 0.0).unwrap().cost();
        assert!(exact <= spt_tree(&net).cost() + 1e-9);
    }

    #[test]
    fn tree_limit_respected() {
        // A bound so tight relative to an adversarial layout that many trees
        // must be enumerated; with budget 1, only the MST is examined and it
        // is infeasible.
        // Seed chosen so the (pruned) constrained MST is infeasible at
        // eps = 0: the enumeration must request a second tree and trip the
        // budget. (On some seeds pruning alone already yields a feasible
        // first tree, which returns Ok without touching the limit.)
        let net = random_net(6, 8);
        let c = PathConstraint::from_eps(&net, 0.0).unwrap();
        let mst_radius = mst_tree(&net).source_radius();
        assert!(
            mst_radius > net.source_radius() + 1e-9,
            "need a non-star MST"
        );
        let res = gabow_bmst_with(
            &net,
            c,
            GabowConfig {
                max_trees: 1,
                ..GabowConfig::default()
            },
        );
        assert!(matches!(
            res,
            Err(BmstError::TreeLimitExceeded { limit: 1 })
        ));
    }

    #[test]
    fn lub_infeasible_window_detected() {
        // Sinks at distances 2 and 10; require all paths in [9, 10.5]:
        // the near sink cannot reach the window floor with a spanning tree
        // that also respects the ceiling for itself... actually its direct
        // edge (length 2) is banned by Lemma 6.1 and every detour via the
        // far sink gives 10 + 8 = 18 > 10.5.
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(10.0, 0.0),
        ])
        .unwrap();
        let c = PathConstraint::explicit(9.0, 10.5).unwrap();
        let res = gabow_bmst_with(&net, c, GabowConfig::default());
        assert!(matches!(res, Err(BmstError::Infeasible { .. })), "{res:?}");
    }

    #[test]
    fn lub_feasible_window_found() {
        // Sinks at 8 and 10 on a line; window [7, 12] admits the chain
        // S -> a(8) -> ... and direct edges.
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(8.0, 0.0),
            Point::new(10.0, 0.0),
        ])
        .unwrap();
        let c = PathConstraint::explicit(7.0, 12.0).unwrap();
        let out = gabow_bmst_with(&net, c, GabowConfig::default()).unwrap();
        for v in net.sinks() {
            let p = out.tree.dist_from_root(v);
            assert!((7.0..=12.0 + 1e-9).contains(&p));
        }
        // Optimal: S-a (8) + a-b (2) = 10, paths 8 and 10.
        assert!((out.tree.cost() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn preprocess_lemma_4_2_eliminates_hopeless_edges() {
        // Sinks a and b both far from S and from each other; with eps = 0 the
        // edge (a, b) pushes either endpoint over the bound.
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap();
        let c = PathConstraint::from_eps(&net, 0.0).unwrap();
        let (kept, _) = preprocess_edges(&net, c);
        assert!(!kept.iter().any(|e| e.endpoints() == (1, 2)));
    }

    #[test]
    fn preprocess_lemma_4_1_eliminates_heavy_sink_edges() {
        // Sink-sink edge heavier than both direct edges, bound loose enough
        // that Lemma 4.2 does not fire.
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(-3.0, 0.0),
        ])
        .unwrap();
        let c = PathConstraint::from_eps(&net, 10.0).unwrap();
        let (kept, _) = preprocess_edges(&net, c);
        // (1,2) has weight 6 > 3 on both sides -> eliminated by 4.1.
        assert!(!kept.iter().any(|e| e.endpoints() == (1, 2)));
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn preprocess_keeps_everything_when_unbounded() {
        let net = random_net(0, 6);
        let c = PathConstraint::from_eps(&net, f64::INFINITY).unwrap();
        let (kept, forced) = preprocess_edges(&net, c);
        assert_eq!(kept.len(), net.complete_edge_count());
        assert!(forced.is_empty());
    }

    #[test]
    fn single_node() {
        let net = Net::with_source_first(vec![Point::new(0.0, 0.0)]).unwrap();
        assert_eq!(gabow_bmst(&net, 0.0).unwrap().cost(), 0.0);
    }
}
