//! Error type shared by all BMST constructions.

use std::error::Error;
use std::fmt;

use bmst_geom::GeomError;
use bmst_graph::GraphError;
use bmst_tree::TreeError;

/// Errors produced by the bounded path length constructions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BmstError {
    /// No tree satisfying the path-length constraints exists (or the
    /// heuristic could not find one). For spanning-tree heuristics with both
    /// lower and upper bounds this is an expected outcome the paper marks
    /// with "-" in its Table 5.
    Infeasible {
        /// Nodes the construction managed to connect to the source.
        connected: usize,
        /// Total nodes that had to be connected.
        total: usize,
        /// The tightest `eps` known to admit a tree, when the failure path
        /// could compute one (e.g. the post-construction window check knows
        /// the exact path ratio of the tree it rejected). The degradation
        /// ladder uses it to jump straight to a feasible rung.
        min_feasible_eps: Option<f64>,
    },
    /// The exact enumeration (BMST_G) exceeded its configured tree budget.
    /// The paper's original Gabow implementation fails with memory overflow
    /// in the same situations; the cap turns that into a clean error.
    TreeLimitExceeded {
        /// The configured maximum number of spanning trees to enumerate.
        limit: usize,
    },
    /// An invalid `eps` parameter (negative or NaN) was supplied.
    InvalidEpsilon {
        /// The offending value.
        eps: f64,
    },
    /// The lower bound exceeds the upper bound, so the constraint set is
    /// empty.
    EmptyBoundWindow {
        /// Lower path-length bound.
        lower: f64,
        /// Upper path-length bound.
        upper: f64,
    },
    /// The algorithm only supports a specific metric (e.g. Steiner
    /// construction on the rectilinear Hanan grid requires L1).
    UnsupportedMetric {
        /// The metric the net uses.
        metric: bmst_geom::Metric,
    },
    /// The input is degenerate in a way the construction cannot route:
    /// produced by the adversarial-input validation pass when a diagnostic
    /// that is normally a warning becomes fatal for the selected algorithm.
    DegenerateInput {
        /// What is wrong with the net, in `InputDiagnostic` terms.
        detail: String,
    },
    /// An internal invariant was violated: a construction panicked (caught
    /// by [`crate::TreeBuilder::try_build`]) or the tree auditor rejected a
    /// finished tree. Always a bug in the construction, never in the input;
    /// the router isolates it to the offending net instead of crashing.
    Internal {
        /// The panic message or invariant-violation report.
        detail: String,
    },
    /// The request's cancellation token fired before the construction
    /// finished: either the deadline passed or the owner cancelled the
    /// token explicitly (e.g. server shutdown). Terminal for the
    /// degradation ladder — retrying at a looser rung cannot resurrect a
    /// dead deadline.
    DeadlineExceeded {
        /// Milliseconds elapsed since the token was armed when the check
        /// fired.
        elapsed_ms: u64,
        /// The configured budget in milliseconds (0 when the token was
        /// cancelled explicitly rather than by deadline).
        budget_ms: u64,
    },
    /// A geometry error bubbled up from input validation.
    Geom(GeomError),
    /// A graph error bubbled up from a substrate algorithm.
    Graph(GraphError),
    /// A tree construction error bubbled up from a substrate operation.
    Tree(TreeError),
}

impl BmstError {
    /// Convenience constructor for [`BmstError::Internal`], used by the
    /// panic-isolation layer and the invariant auditor.
    pub fn internal(detail: impl Into<String>) -> Self {
        BmstError::Internal {
            detail: detail.into(),
        }
    }

    /// `true` when the router's degradation ladder can hope to recover
    /// from this error by relaxing the constraint (or, for
    /// [`BmstError::UnsupportedMetric`], by swapping to the always-feasible
    /// SPT rung). Degenerate input, invalid parameters, and internal
    /// invariant violations are not recoverable: retrying cannot change
    /// the outcome and the net must be reported failed.
    /// [`BmstError::DeadlineExceeded`] is likewise terminal — the request's
    /// time budget is already spent, so the ladder must stop immediately.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            BmstError::Infeasible { .. }
                | BmstError::TreeLimitExceeded { .. }
                | BmstError::EmptyBoundWindow { .. }
                | BmstError::UnsupportedMetric { .. }
        )
    }

    /// `true` when retrying the same construction with a larger `eps`
    /// could succeed. [`BmstError::UnsupportedMetric`] is recoverable but
    /// eps-independent: the ladder skips straight to the fallback rung.
    pub fn eps_relaxation_helps(&self) -> bool {
        matches!(
            self,
            BmstError::Infeasible { .. }
                | BmstError::TreeLimitExceeded { .. }
                | BmstError::EmptyBoundWindow { .. }
        )
    }

    /// The tightest feasible `eps` this error carries, if any.
    pub fn min_feasible_eps(&self) -> Option<f64> {
        match self {
            BmstError::Infeasible {
                min_feasible_eps, ..
            } => *min_feasible_eps,
            _ => None,
        }
    }
}

impl fmt::Display for BmstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmstError::Infeasible {
                connected,
                total,
                min_feasible_eps,
            } => {
                write!(
                    f,
                    "no feasible tree: connected {connected} of {total} nodes under the path bounds"
                )?;
                if let Some(eps) = min_feasible_eps {
                    write!(f, " (tightest feasible eps found: {eps:.4})")?;
                }
                Ok(())
            }
            BmstError::TreeLimitExceeded { limit } => {
                write!(
                    f,
                    "spanning tree enumeration exceeded the budget of {limit} trees"
                )
            }
            BmstError::InvalidEpsilon { eps } => {
                write!(f, "epsilon must be non-negative (or +inf), got {eps}")
            }
            BmstError::EmptyBoundWindow { lower, upper } => {
                write!(f, "lower bound {lower} exceeds upper bound {upper}")
            }
            BmstError::UnsupportedMetric { metric } => {
                write!(f, "algorithm does not support the {metric} metric")
            }
            BmstError::DegenerateInput { detail } => {
                write!(f, "degenerate input: {detail}")
            }
            BmstError::Internal { detail } => {
                write!(f, "internal invariant violation: {detail}")
            }
            BmstError::DeadlineExceeded {
                elapsed_ms,
                budget_ms,
            } => {
                if *budget_ms == 0 {
                    write!(f, "cancelled after {elapsed_ms} ms")
                } else {
                    write!(
                        f,
                        "deadline exceeded: {elapsed_ms} ms elapsed against a {budget_ms} ms budget"
                    )
                }
            }
            BmstError::Geom(e) => write!(f, "geometry error: {e}"),
            BmstError::Graph(e) => write!(f, "graph error: {e}"),
            BmstError::Tree(e) => write!(f, "tree error: {e}"),
        }
    }
}

impl Error for BmstError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BmstError::Geom(e) => Some(e),
            BmstError::Graph(e) => Some(e),
            BmstError::Tree(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for BmstError {
    fn from(e: GeomError) -> Self {
        BmstError::Geom(e)
    }
}

impl From<GraphError> for BmstError {
    fn from(e: GraphError) -> Self {
        BmstError::Graph(e)
    }
}

impl From<TreeError> for BmstError {
    fn from(e: TreeError) -> Self {
        BmstError::Tree(e)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(BmstError::Infeasible {
            connected: 3,
            total: 5,
            min_feasible_eps: None
        }
        .to_string()
        .contains("3 of 5"));
        let with_hint = BmstError::Infeasible {
            connected: 3,
            total: 5,
            min_feasible_eps: Some(0.75),
        }
        .to_string();
        assert!(with_hint.contains("0.75"), "{with_hint}");
        assert!(BmstError::internal("path table desync")
            .to_string()
            .contains("path table desync"));
        assert!(BmstError::DegenerateInput {
            detail: "sink 3 coincides with the source".into()
        }
        .to_string()
        .contains("sink 3"));
        assert!(BmstError::TreeLimitExceeded { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(BmstError::InvalidEpsilon { eps: -1.0 }
            .to_string()
            .contains("-1"));
        assert!(BmstError::EmptyBoundWindow {
            lower: 2.0,
            upper: 1.0
        }
        .to_string()
        .contains("exceeds"));
        let deadline = BmstError::DeadlineExceeded {
            elapsed_ms: 63,
            budget_ms: 50,
        }
        .to_string();
        assert!(
            deadline.contains("63") && deadline.contains("50"),
            "{deadline}"
        );
        assert!(BmstError::DeadlineExceeded {
            elapsed_ms: 9,
            budget_ms: 0
        }
        .to_string()
        .contains("cancelled"));
    }

    #[test]
    fn conversions_and_sources() {
        let e: BmstError = GeomError::EmptyNet.into();
        assert!(matches!(e, BmstError::Geom(_)));
        assert!(Error::source(&e).is_some());
        let e: BmstError = GraphError::Disconnected { components: 2 }.into();
        assert!(matches!(e, BmstError::Graph(_)));
        let e: BmstError = TreeError::InvalidExchange.into();
        assert!(matches!(e, BmstError::Tree(_)));
        assert!(Error::source(&BmstError::InvalidEpsilon { eps: -1.0 }).is_none());
    }

    #[test]
    fn recoverability_classification() {
        let infeasible = BmstError::Infeasible {
            connected: 1,
            total: 3,
            min_feasible_eps: Some(0.4),
        };
        assert!(infeasible.is_recoverable());
        assert!(infeasible.eps_relaxation_helps());
        assert_eq!(infeasible.min_feasible_eps(), Some(0.4));

        let metric = BmstError::UnsupportedMetric {
            metric: bmst_geom::Metric::L2,
        };
        assert!(metric.is_recoverable());
        assert!(!metric.eps_relaxation_helps());

        for fatal in [
            BmstError::internal("boom"),
            BmstError::InvalidEpsilon { eps: -1.0 },
            BmstError::Geom(GeomError::EmptyNet),
            BmstError::DegenerateInput { detail: "x".into() },
            BmstError::DeadlineExceeded {
                elapsed_ms: 63,
                budget_ms: 50,
            },
        ] {
            assert!(!fatal.is_recoverable(), "{fatal}");
            assert!(!fatal.eps_relaxation_helps(), "{fatal}");
            assert_eq!(fatal.min_feasible_eps(), None);
        }
    }
}
