//! Error type shared by all BMST constructions.

use std::error::Error;
use std::fmt;

use bmst_geom::GeomError;
use bmst_graph::GraphError;
use bmst_tree::TreeError;

/// Errors produced by the bounded path length constructions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BmstError {
    /// No tree satisfying the path-length constraints exists (or the
    /// heuristic could not find one). For spanning-tree heuristics with both
    /// lower and upper bounds this is an expected outcome the paper marks
    /// with "-" in its Table 5.
    Infeasible {
        /// Nodes the construction managed to connect to the source.
        connected: usize,
        /// Total nodes that had to be connected.
        total: usize,
    },
    /// The exact enumeration (BMST_G) exceeded its configured tree budget.
    /// The paper's original Gabow implementation fails with memory overflow
    /// in the same situations; the cap turns that into a clean error.
    TreeLimitExceeded {
        /// The configured maximum number of spanning trees to enumerate.
        limit: usize,
    },
    /// An invalid `eps` parameter (negative or NaN) was supplied.
    InvalidEpsilon {
        /// The offending value.
        eps: f64,
    },
    /// The lower bound exceeds the upper bound, so the constraint set is
    /// empty.
    EmptyBoundWindow {
        /// Lower path-length bound.
        lower: f64,
        /// Upper path-length bound.
        upper: f64,
    },
    /// The algorithm only supports a specific metric (e.g. Steiner
    /// construction on the rectilinear Hanan grid requires L1).
    UnsupportedMetric {
        /// The metric the net uses.
        metric: bmst_geom::Metric,
    },
    /// A geometry error bubbled up from input validation.
    Geom(GeomError),
    /// A graph error bubbled up from a substrate algorithm.
    Graph(GraphError),
    /// A tree construction error bubbled up from a substrate operation.
    Tree(TreeError),
}

impl fmt::Display for BmstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmstError::Infeasible { connected, total } => write!(
                f,
                "no feasible tree: connected {connected} of {total} nodes under the path bounds"
            ),
            BmstError::TreeLimitExceeded { limit } => {
                write!(
                    f,
                    "spanning tree enumeration exceeded the budget of {limit} trees"
                )
            }
            BmstError::InvalidEpsilon { eps } => {
                write!(f, "epsilon must be non-negative (or +inf), got {eps}")
            }
            BmstError::EmptyBoundWindow { lower, upper } => {
                write!(f, "lower bound {lower} exceeds upper bound {upper}")
            }
            BmstError::UnsupportedMetric { metric } => {
                write!(f, "algorithm does not support the {metric} metric")
            }
            BmstError::Geom(e) => write!(f, "geometry error: {e}"),
            BmstError::Graph(e) => write!(f, "graph error: {e}"),
            BmstError::Tree(e) => write!(f, "tree error: {e}"),
        }
    }
}

impl Error for BmstError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BmstError::Geom(e) => Some(e),
            BmstError::Graph(e) => Some(e),
            BmstError::Tree(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for BmstError {
    fn from(e: GeomError) -> Self {
        BmstError::Geom(e)
    }
}

impl From<GraphError> for BmstError {
    fn from(e: GraphError) -> Self {
        BmstError::Graph(e)
    }
}

impl From<TreeError> for BmstError {
    fn from(e: TreeError) -> Self {
        BmstError::Tree(e)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(BmstError::Infeasible {
            connected: 3,
            total: 5
        }
        .to_string()
        .contains("3 of 5"));
        assert!(BmstError::TreeLimitExceeded { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(BmstError::InvalidEpsilon { eps: -1.0 }
            .to_string()
            .contains("-1"));
        assert!(BmstError::EmptyBoundWindow {
            lower: 2.0,
            upper: 1.0
        }
        .to_string()
        .contains("exceeds"));
    }

    #[test]
    fn conversions_and_sources() {
        let e: BmstError = GeomError::EmptyNet.into();
        assert!(matches!(e, BmstError::Geom(_)));
        assert!(Error::source(&e).is_some());
        let e: BmstError = GraphError::Disconnected { components: 2 }.into();
        assert!(matches!(e, BmstError::Graph(_)));
        let e: BmstError = TreeError::InvalidExchange.into();
        assert!(matches!(e, BmstError::Tree(_)));
        assert!(Error::source(&BmstError::InvalidEpsilon { eps: -1.0 }).is_none());
    }
}
