//! BKRUS: the bounded path length Kruskal construction (paper §3.1).

use bmst_geom::Net;
use bmst_graph::Edge;
use bmst_tree::RoutingTree;

use crate::forest::KruskalForest;
use crate::{BmstError, ProblemContext};

/// Why an edge was accepted into or rejected from the tree under
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeDecision {
    /// The edge was feasible and merged two partial trees.
    Accepted,
    /// Both endpoints were already in the same partial tree
    /// (violates condition (2)).
    RejectedCycle,
    /// The merge would violate the path-length bound
    /// (violates condition (3)).
    RejectedBound,
}

/// One entry of a BKRUS construction trace (used to regenerate the paper's
/// Figure 4 walk-through).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// The edge that was considered.
    pub edge: Edge,
    /// What BKRUS decided about it.
    pub decision: EdgeDecision,
}

/// Constructs a Bounded path length Kruskal Tree (BKT): a spanning tree with
/// `path(S, x) <= (1 + eps) * R` for every sink `x`, at small routing cost.
///
/// This is Algorithm BKRUS of the paper: edges of the complete terminal
/// graph are scanned in nondecreasing weight order; an edge `(u, v)` merges
/// two partial trees when it is not a cycle edge and the merge passes the
/// feasibility conditions (3-a)/(3-b). By Lemma 3.1 a rejected edge can
/// never become feasible later, so the single scan suffices. `O(V^3)`.
///
/// With `eps = f64::INFINITY` the construction degenerates to the classical
/// Kruskal MST.
///
/// # Errors
///
/// * [`BmstError::InvalidEpsilon`] for negative/NaN `eps`;
/// * [`BmstError::Infeasible`] if the scan terminates without a spanning
///   tree. (This cannot happen for `eps >= 0` — every component keeps a
///   feasible node, making its direct source edge admissible — but the
///   error is reported rather than asserted so the invariant is checked in
///   release builds too.)
///
/// # Examples
///
/// ```
/// use bmst_core::bkrus;
/// use bmst_geom::{Net, Point};
///
/// let net = Net::with_source_first(vec![
///     Point::new(0.0, 0.0),
///     Point::new(8.0, 0.0),
///     Point::new(8.0, 1.0),
///     Point::new(9.0, 1.0),
/// ])?;
/// let bkt = bkrus(&net, 0.1)?;
/// let bound = 1.1 * net.source_radius();
/// assert!(bkt.source_radius() <= bound + 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn bkrus(net: &Net, eps: f64) -> Result<RoutingTree, BmstError> {
    let cx = ProblemContext::new(net, eps)?;
    run(&cx, None)
}

/// Like [`bkrus`], but records the decision taken for every edge considered
/// before the tree completed (the paper's Figure 4 walk-through).
///
/// # Errors
///
/// Same conditions as [`bkrus`].
pub fn bkrus_trace(net: &Net, eps: f64) -> Result<(RoutingTree, Vec<TraceEvent>), BmstError> {
    let cx = ProblemContext::new(net, eps)?;
    let mut trace = Vec::new();
    let tree = run(&cx, Some(&mut trace))?;
    Ok((tree, trace))
}

/// Shared BKRUS driver, also used by the lower/upper bounded variant.
///
/// `constraint.lower > 0` activates the §6 extensions: Lemma 6.1 edge
/// elimination and the lower-bound merge condition.
pub(crate) fn run(
    cx: &ProblemContext<'_>,
    mut trace: Option<&mut Vec<TraceEvent>>,
) -> Result<RoutingTree, BmstError> {
    let net = cx.net();
    let constraint = *cx.constraint();
    let n = net.len();
    let source = net.source();
    if n == 1 {
        let tree = RoutingTree::from_edges(1, source, [])?;
        crate::audit::debug_audit(net, &tree, Some(&constraint));
        return Ok(tree);
    }

    let dist_s: Vec<f64> = (0..n).map(|v| cx.dist(source, v)).collect();

    // Materialize the supply's shared state (dense: matrix + sorted list;
    // sparse: the neighbor index) before opening the construction span,
    // so its cost is attributed to the context, not this run.
    let stream = cx.edge_stream();

    let mut forest = KruskalForest::new(n, source);
    let mut tree_edges: Vec<Edge> = Vec::with_capacity(n - 1);
    let obs_span = bmst_obs::span("bkrus");
    let mut scanned = 0u64;
    let mut cycle_rejects = 0u64;
    let mut bound_rejects = 0u64;

    // Both supplies yield the total canonical (weight, u, v) order, so
    // skipping Lemma 6.1 edges here visits the surviving edges in
    // exactly the order the pre-context code produced by filtering first.
    for e in stream {
        if tree_edges.len() == n - 1 {
            break; // early exit after V - 1 unions
        }
        // Cooperative cancellation: poll at a stride so a never-token
        // costs one branch and a live token's clock read is amortized.
        if scanned & 0x3f == 0 {
            cx.check_cancelled()?;
        }
        if constraint.has_lower() && e.connects(source) && e.weight < constraint.lower {
            // Lemma 6.1: direct source edges shorter than the lower bound
            // can never appear in a feasible tree.
            continue;
        }
        scanned += 1;
        if forest.same_component(e.u, e.v) {
            cycle_rejects += 1;
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraceEvent {
                    edge: e,
                    decision: EdgeDecision::RejectedCycle,
                });
            }
            continue;
        }
        let upper_ok = forest.is_feasible_merge(e.u, e.v, e.weight, &dist_s, constraint.upper);
        let lower_ok = !constraint.has_lower()
            || lower_bound_ok(&mut forest, e.u, e.v, e.weight, constraint.lower);
        if upper_ok && lower_ok {
            forest.merge(e.u, e.v, e.weight);
            tree_edges.push(e);
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraceEvent {
                    edge: e,
                    decision: EdgeDecision::Accepted,
                });
            }
        } else {
            bound_rejects += 1;
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraceEvent {
                    edge: e,
                    decision: EdgeDecision::RejectedBound,
                });
            }
        }
    }

    if bmst_obs::enabled() {
        bmst_obs::counter("bkrus.edges_scanned", scanned);
        bmst_obs::counter("bkrus.rejected_cycle", cycle_rejects);
        bmst_obs::counter("bkrus.rejected_bound", bound_rejects);
        bmst_obs::counter(
            "bkrus.edges_accepted",
            u64::try_from(tree_edges.len()).unwrap_or(u64::MAX),
        );
    }
    drop(obs_span);

    if tree_edges.len() != n - 1 {
        // A fired token truncates the sparse edge stream, so an
        // incomplete scan may mean cancellation rather than infeasibility
        // — surface the deadline, not a bogus Infeasible.
        cx.check_cancelled()?;
        return Err(BmstError::Infeasible {
            connected: tree_edges.len() + 1,
            total: n,
            min_feasible_eps: None,
        });
    }
    let tree = RoutingTree::from_edges(n, source, tree_edges)?;
    crate::audit::debug_audit(net, &tree, Some(&constraint));
    Ok(tree)
}

/// §6 lower-bound condition: a merge that connects a component to the
/// source's partial tree fixes `path(S, y)` for every newly attached node
/// `y`; the shortest of those is `path(S, u) + w` (at `y = v`), so that is
/// what must clear the lower bound.
fn lower_bound_ok(forest: &mut KruskalForest, u: usize, v: usize, w: f64, lower: f64) -> bool {
    let s = forest.source();
    let (su, sv) = (forest.contains_source(u), forest.contains_source(v));
    if su {
        bmst_geom::le_tol(lower, forest.path(s, u) + w)
    } else if sv {
        bmst_geom::le_tol(lower, forest.path(s, v) + w)
    } else {
        true // no source-to-node path is fixed by this merge
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::mst_tree;
    use bmst_geom::Point;

    /// The paper's Figure 4 instance: source at origin, four sinks, R = 8,
    /// bound 12 at eps = 0.5.
    ///
    /// Coordinates are chosen to match the figure's labelled distances:
    /// d(a,d) = 2, d(c,d) = 3, d(b,c) = 2 (accepted chain), d(S,b) = 5,
    /// and rejected candidates d(c,d)... The figure's essential behaviour is
    /// what we test: the far cluster chains internally, connects to the
    /// source through its nearest member, and over-long direct edges are
    /// rejected.
    fn figure4_like_net() -> Net {
        Net::with_source_first(vec![
            Point::new(0.0, 0.0), // S
            Point::new(8.0, 0.0), // a: the farthest sink, R = 8
            Point::new(5.0, 0.0), // b
            Point::new(6.0, 1.0), // c
            Point::new(7.0, 1.0), // d
        ])
        .unwrap()
    }

    #[test]
    fn respects_bound_on_figure4_net() {
        let net = figure4_like_net();
        for eps in [0.0, 0.1, 0.25, 0.5, 1.0] {
            let t = bkrus(&net, eps).unwrap();
            assert!(t.is_spanning());
            let bound = (1.0 + eps) * net.source_radius();
            assert!(
                t.source_radius() <= bound + 1e-9,
                "eps={eps}: radius {} > bound {bound}",
                t.source_radius()
            );
        }
    }

    #[test]
    fn infinite_eps_gives_mst_cost() {
        let net = figure4_like_net();
        let bkt = bkrus(&net, f64::INFINITY).unwrap();
        let mst = mst_tree(&net);
        assert!((bkt.cost() - mst.cost()).abs() < 1e-9);
    }

    #[test]
    fn cost_monotone_nonincreasing_in_eps() {
        let net = figure4_like_net();
        let costs: Vec<f64> = [0.0, 0.1, 0.2, 0.5, 1.0, f64::INFINITY]
            .iter()
            .map(|&e| bkrus(&net, e).unwrap().cost())
            .collect();
        for w in costs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "costs not monotone: {costs:?}");
        }
    }

    #[test]
    fn eps_zero_is_not_necessarily_star() {
        // With eps = 0 every sink must be reached at exactly its direct
        // distance... or less is impossible, so paths are direct-length, but
        // collinear sinks can still chain.
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
        ])
        .unwrap();
        let t = bkrus(&net, 0.0).unwrap();
        assert!((t.cost() - 3.0).abs() < 1e-9); // chains: same as MST
        assert!(t.source_radius() <= net.source_radius() + 1e-9);
    }

    #[test]
    fn negative_eps_rejected() {
        let net = figure4_like_net();
        assert!(matches!(
            bkrus(&net, -0.5),
            Err(BmstError::InvalidEpsilon { .. })
        ));
    }

    #[test]
    fn single_terminal_and_single_sink() {
        let net = Net::with_source_first(vec![Point::new(0.0, 0.0)]).unwrap();
        let t = bkrus(&net, 0.0).unwrap();
        assert_eq!(t.cost(), 0.0);

        let net = Net::with_source_first(vec![Point::new(0.0, 0.0), Point::new(2.0, 2.0)]).unwrap();
        let t = bkrus(&net, 0.0).unwrap();
        assert_eq!(t.cost(), 4.0);
        assert_eq!(t.parent(1), Some(0));
    }

    #[test]
    fn trace_records_acceptances_and_rejections() {
        let net = figure4_like_net();
        let (tree, trace) = bkrus_trace(&net, 0.0).unwrap();
        let accepted: Vec<_> = trace
            .iter()
            .filter(|e| e.decision == EdgeDecision::Accepted)
            .map(|e| e.edge.endpoints())
            .collect();
        assert_eq!(accepted.len(), net.len() - 1);
        // Every accepted edge is a tree edge.
        for (u, v) in accepted {
            assert!(tree.contains_edge(u, v));
        }
        // With eps = 0 on this net at least one bound rejection must occur
        // (the far cluster cannot fully chain through b).
        assert!(trace
            .iter()
            .any(|e| e.decision == EdgeDecision::RejectedBound));
    }

    #[test]
    fn trace_cycle_rejections_happen() {
        // Equilateral-ish triangle of sinks close together far from S: the
        // third intra-cluster edge always closes a cycle.
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.5, 0.0),
            Point::new(10.25, 0.4),
        ])
        .unwrap();
        let (_, trace) = bkrus_trace(&net, 1.0).unwrap();
        assert!(trace
            .iter()
            .any(|e| e.decision == EdgeDecision::RejectedCycle));
    }

    #[test]
    fn figure1_style_pathology_bkrus_stays_cheap() {
        // The paper's Figure 1 story: a far cluster of sinks. BPRIM-style
        // star connections are wasteful; BKRUS should chain the cluster and
        // pay roughly MST cost for moderate eps.
        let mut pts = vec![Point::new(0.0, 0.0)];
        for i in 0..8 {
            pts.push(Point::new(
                16.0 + 0.3 * (i % 4) as f64,
                0.3 * (i / 4) as f64,
            ));
        }
        let net = Net::with_source_first(pts).unwrap();
        let mst = mst_tree(&net).cost();
        let t = bkrus(&net, 0.25).unwrap();
        assert!(t.cost() <= 1.3 * mst, "cost {} vs mst {mst}", t.cost());
    }

    #[test]
    fn all_sinks_covered_and_parented() {
        let net = figure4_like_net();
        let t = bkrus(&net, 0.3).unwrap();
        for v in net.sinks() {
            assert!(t.is_covered(v));
            assert!(t.parent(v).is_some());
        }
    }
}
