//! Baseline trees: MST, SPT, and the maximal spanning tree.
//!
//! Every table in the paper reports ratios against these references:
//! `perf ratio = cost(T) / cost(MST)` and
//! `path ratio = longest path(T) / longest path(SPT)`.

use bmst_geom::Net;
use bmst_graph::{prim_mst_with, Edge};
use bmst_tree::RoutingTree;

use crate::ProblemContext;

/// The minimum spanning tree of the net, rooted at the source.
///
/// This is the `eps = inf` end of the trade-off: minimal routing cost,
/// unconstrained (possibly very long) source-sink paths.
///
/// # Examples
///
/// ```
/// use bmst_core::mst_tree;
/// use bmst_geom::{Net, Point};
///
/// let net = Net::with_source_first(vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(2.0, 0.0),
/// ])?;
/// let mst = mst_tree(&net);
/// assert_eq!(mst.cost(), 2.0);
/// // The MST chains the collinear points, so the radius equals the cost.
/// assert_eq!(mst.source_radius(), 2.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn mst_tree(net: &Net) -> RoutingTree {
    mst_tree_cx(&ProblemContext::unbounded(net))
}

/// [`mst_tree`] over a shared [`ProblemContext`]. Distances come from
/// `cx.dist` — a cached-matrix lookup when the dense supply already built
/// one, the metric directly otherwise — so a baseline ratio report never
/// forces the O(n²) matrix onto a sparse-supply run. Either way the bits
/// (and the tree) are identical.
#[allow(clippy::expect_used)] // construction invariant, justified inline
pub(crate) fn mst_tree_cx(cx: &ProblemContext<'_>) -> RoutingTree {
    let net = cx.net();
    let edges = prim_mst_with(net.len(), net.source(), |i, j| cx.dist(i, j));
    let tree = RoutingTree::from_edges(net.len(), net.source(), edges)
        // lint: allow(no-panic) — Prim on a complete graph always spans
        .expect("Prim's algorithm produces a spanning tree");
    crate::audit::debug_audit(net, &tree, None);
    tree
}

/// The shortest path tree of the net: every sink connected to the source by
/// a direct edge.
///
/// On a complete graph in a metric space the direct edge *is* the shortest
/// path (triangle inequality), so the SPT is the star centred at the source.
/// Its radius `R` is minimal among all spanning trees, and its cost is the
/// worst of all the constructions considered in the paper (Figure 11).
#[allow(clippy::expect_used)] // construction invariant, justified inline
pub fn spt_tree(net: &Net) -> RoutingTree {
    let s = net.source();
    let edges = net.sinks().map(|v| Edge::new(s, v, net.dist(s, v)));
    // lint: allow(no-panic) — a star over every sink is a spanning tree by construction
    let tree = RoutingTree::from_edges(net.len(), s, edges).expect("a star is a spanning tree");
    crate::audit::debug_audit(net, &tree, None);
    tree
}

/// The *maximal* spanning tree: the most expensive spanning tree of the
/// complete graph.
///
/// It appears at the top of the paper's routing-cost chart (Figure 11) as
/// the cost ceiling. Computed by running Prim on negated weights.
#[allow(clippy::expect_used)] // construction invariant, justified inline
                              // analyze: complexity(n^2)
pub fn maximal_spanning_tree(net: &Net) -> RoutingTree {
    let n = net.len();
    let s = net.source();
    // Prim with maximum selection over the dense matrix.
    let d = net.distance_matrix();
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::NEG_INFINITY; n];
    let mut best_from = vec![usize::MAX; n];
    in_tree[s] = true;
    for v in 0..n {
        if v != s {
            best[v] = d[(s, v)];
            best_from[v] = s;
        }
    }
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut key = f64::NEG_INFINITY;
        for v in 0..n {
            if !in_tree[v] && best[v] > key {
                pick = v;
                key = best[v];
            }
        }
        in_tree[pick] = true;
        edges.push(Edge::new(best_from[pick], pick, key));
        for v in 0..n {
            if !in_tree[v] && d[(pick, v)] > best[v] {
                best[v] = d[(pick, v)];
                best_from[v] = pick;
            }
        }
    }
    // lint: allow(no-panic) — max-Prim on a complete graph always spans
    let tree = RoutingTree::from_edges(n, s, edges).expect("Prim produces a spanning tree");
    crate::audit::debug_audit(net, &tree, None);
    tree
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use bmst_geom::Point;

    fn sample_net() -> Net {
        Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 3.0),
            Point::new(0.0, 3.0),
            Point::new(2.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn spt_is_a_star_with_radius_r() {
        let net = sample_net();
        let spt = spt_tree(&net);
        assert!(spt.is_spanning());
        for v in net.sinks() {
            assert_eq!(spt.parent(v), Some(net.source()));
            assert_eq!(spt.dist_from_root(v), net.dist(net.source(), v));
        }
        assert_eq!(spt.source_radius(), net.source_radius());
    }

    #[test]
    fn mst_cost_at_most_spt_cost() {
        let net = sample_net();
        assert!(mst_tree(&net).cost() <= spt_tree(&net).cost() + 1e-9);
    }

    #[test]
    fn mst_radius_at_least_spt_radius() {
        let net = sample_net();
        assert!(mst_tree(&net).source_radius() + 1e-9 >= spt_tree(&net).source_radius());
    }

    #[test]
    fn maximal_spanning_tree_dominates_all() {
        let net = sample_net();
        let maxst = maximal_spanning_tree(&net);
        assert!(maxst.is_spanning());
        assert!(maxst.cost() >= spt_tree(&net).cost() - 1e-9);
        assert!(maxst.cost() >= mst_tree(&net).cost());
    }

    #[test]
    fn single_sink_net_all_trees_coincide() {
        let net = Net::with_source_first(vec![Point::new(0.0, 0.0), Point::new(3.0, 1.0)]).unwrap();
        assert_eq!(mst_tree(&net).cost(), 4.0);
        assert_eq!(spt_tree(&net).cost(), 4.0);
        assert_eq!(maximal_spanning_tree(&net).cost(), 4.0);
    }

    #[test]
    fn source_only_net() {
        let net = Net::with_source_first(vec![Point::new(1.0, 1.0)]).unwrap();
        assert_eq!(mst_tree(&net).cost(), 0.0);
        assert_eq!(spt_tree(&net).cost(), 0.0);
        assert_eq!(maximal_spanning_tree(&net).cost(), 0.0);
    }

    #[test]
    fn non_first_source_respected() {
        let net = Net::new(
            vec![
                Point::new(5.0, 0.0),
                Point::new(0.0, 0.0),
                Point::new(9.0, 0.0),
            ],
            1,
            bmst_geom::Metric::L1,
        )
        .unwrap();
        let spt = spt_tree(&net);
        assert_eq!(spt.root(), 1);
        assert_eq!(spt.dist_from_root(2), 9.0);
    }
}
