//! Shared per-net problem state.
//!
//! Every construction in the paper operates on the same derived instance
//! data: the complete terminal graph's distance matrix `D[V][V]`, its
//! weight-sorted edge list, and the validated path-length window. Before
//! this module each `pub fn <alg>(net, eps)` entry point re-derived that
//! state from scratch; [`ProblemContext`] computes each piece lazily, at
//! most once, and hands shared references to every
//! [`TreeBuilder`](crate::TreeBuilder) run against the same net.

use std::sync::OnceLock;

use bmst_geom::{DistanceMatrix, NeighborIndex, Net};
use bmst_graph::{complete_edges, sort_edges, Edge};
use bmst_tree::ElmoreParams;

use crate::cancel::CancelToken;
use crate::supply::EdgeStream;
use crate::{BmstError, EdgeSupply, PathConstraint};

/// Default Prim/Dijkstra trade-off parameter (the midpoint blend).
pub(crate) const DEFAULT_PD_BLEND: f64 = 0.5;

/// A non-fatal finding from the adversarial-input validation pass run by
/// [`ProblemContext::diagnostics`].
///
/// These are *warnings*, not errors: a net with coincident sinks or a
/// sink on top of its source still routes (zero-length edges are legal
/// tree edges — see `tests/degenerate_inputs.rs`). The router surfaces
/// them as observability events so a degenerate netlist is visible in
/// traces; a caller that wants them fatal converts one into
/// [`BmstError::DegenerateInput`] via [`InputDiagnostic::to_error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InputDiagnostic {
    /// Two sinks share exact coordinates.
    DuplicateSinks {
        /// The first sink's node index.
        a: usize,
        /// The second sink's node index.
        b: usize,
    },
    /// A sink shares the source's exact coordinates.
    SourceCoincidentSink {
        /// The coincident sink's node index.
        sink: usize,
    },
    /// Every sink coincides with the source, so `R = 0` and every path
    /// bound `(1 + eps) * R` collapses to zero.
    ZeroRadius,
}

impl InputDiagnostic {
    /// Converts the warning into a fatal [`BmstError::DegenerateInput`],
    /// for callers that reject rather than tolerate degenerate geometry.
    pub fn to_error(self) -> BmstError {
        BmstError::DegenerateInput {
            detail: self.to_string(),
        }
    }
}

impl std::fmt::Display for InputDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InputDiagnostic::DuplicateSinks { a, b } => {
                write!(f, "sinks {a} and {b} have identical coordinates")
            }
            InputDiagnostic::SourceCoincidentSink { sink } => {
                write!(f, "sink {sink} coincides with the source")
            }
            InputDiagnostic::ZeroRadius => {
                write!(f, "all sinks coincide with the source (zero radius)")
            }
        }
    }
}

/// A per-net cache of the state every bounded-tree construction shares:
/// the [`Net`], its [`DistanceMatrix`], the lazily-built weight-sorted
/// complete edge list, and the validated [`PathConstraint`].
///
/// Construct one per routing problem and run any number of
/// [`TreeBuilder`](crate::TreeBuilder)s against it; the matrix and edge
/// list are computed at most once. The lazy members use [`OnceLock`], so a
/// shared `&ProblemContext` may be used from several threads at once (the
/// parallel netlist router gives each net its own context, but nothing
/// prevents fanning builders out over one).
///
/// # Examples
///
/// ```
/// use bmst_core::{registry, ProblemContext};
/// use bmst_geom::{Net, Point};
///
/// let net = Net::with_source_first(vec![
///     Point::new(0.0, 0.0),
///     Point::new(9.0, 1.0),
///     Point::new(10.0, -1.0),
/// ])?;
/// let cx = ProblemContext::new(&net, 0.2)?;
/// for builder in registry() {
///     let tree = builder.build(&cx)?;
///     assert!(tree.is_spanning());
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ProblemContext<'a> {
    net: &'a Net,
    constraint: PathConstraint,
    eps: f64,
    pd_blend: f64,
    supply: EdgeSupply,
    cancel: CancelToken,
    matrix: OnceLock<DistanceMatrix>,
    sorted_edges: OnceLock<Vec<Edge>>,
    neighbor_index: OnceLock<NeighborIndex<'a>>,
    elmore: OnceLock<ElmoreParams>,
    diagnostics: OnceLock<Vec<InputDiagnostic>>,
}

impl<'a> ProblemContext<'a> {
    /// Builds a context with the standard upper bound `(1 + eps) * R`.
    ///
    /// # Errors
    ///
    /// [`BmstError::InvalidEpsilon`] when `eps` is negative or NaN.
    pub fn new(net: &'a Net, eps: f64) -> Result<Self, BmstError> {
        let constraint = PathConstraint::from_eps(net, eps)?;
        Ok(Self::from_parts(net, constraint, eps))
    }

    /// Builds an unconstrained context (the MST regime, `eps = inf`): used
    /// by the unbounded builders and post-processing passes whose
    /// feasibility is an arbitrary caller predicate.
    pub fn unbounded(net: &'a Net) -> Self {
        let constraint = PathConstraint {
            lower: 0.0,
            upper: f64::INFINITY,
        };
        Self::from_parts(net, constraint, f64::INFINITY)
    }

    /// Builds a context over an already-validated constraint (e.g. a §6
    /// lower/upper window from [`PathConstraint::from_eps_window`]).
    ///
    /// The per-node `eps` used by BPRIM/BRBC is re-derived from the upper
    /// bound; prefer [`ProblemContext::new`] when you have the raw `eps`,
    /// so those constructions see the exact caller-supplied value.
    pub fn with_constraint(net: &'a Net, constraint: PathConstraint) -> Self {
        let r = net.source_radius();
        let eps = if constraint.upper.is_infinite() || r <= 0.0 {
            f64::INFINITY
        } else {
            (constraint.upper / r - 1.0).max(0.0)
        };
        Self::from_parts(net, constraint, eps)
    }

    fn from_parts(net: &'a Net, constraint: PathConstraint, eps: f64) -> Self {
        ProblemContext {
            net,
            constraint,
            eps,
            pd_blend: DEFAULT_PD_BLEND,
            supply: EdgeSupply::Auto,
            cancel: CancelToken::never(),
            matrix: OnceLock::new(),
            sorted_edges: OnceLock::new(),
            neighbor_index: OnceLock::new(),
            elmore: OnceLock::new(),
            diagnostics: OnceLock::new(),
        }
    }

    /// Overrides the edge-candidate supply (default [`EdgeSupply::Auto`]).
    ///
    /// Both supplies produce bit-identical trees; see [`EdgeSupply`] for
    /// the time/memory trade-off.
    #[must_use]
    pub fn with_edge_supply(mut self, supply: EdgeSupply) -> Self {
        self.supply = supply;
        self
    }

    /// Overrides the Prim/Dijkstra blend parameter `c` read by the
    /// `prim-dijkstra` builder (default `0.5`).
    #[must_use]
    pub fn with_pd_blend(mut self, c: f64) -> Self {
        self.pd_blend = c;
        self
    }

    /// Attaches a cancellation token. Construction inner loops poll it via
    /// [`ProblemContext::check_cancelled`]; the default never-token makes
    /// that poll free. The token is cloned, so the caller keeps a handle
    /// it can fire (e.g. on server shutdown).
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The cancellation token attached to this context (the never-token by
    /// default).
    #[inline]
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Polls the attached cancellation token.
    ///
    /// # Errors
    ///
    /// [`BmstError::DeadlineExceeded`] once the token has fired (deadline
    /// passed, deterministic check budget exhausted, or explicit cancel).
    #[inline]
    pub fn check_cancelled(&self) -> Result<(), BmstError> {
        self.cancel.check()
    }

    /// Supplies Elmore delay parameters for the delay-domain builders.
    /// Without this, [`ProblemContext::elmore_params`] falls back to
    /// [`ProblemContext::default_elmore_params`].
    #[must_use]
    pub fn with_elmore(self, params: ElmoreParams) -> Self {
        // A freshly-built OnceLock is empty, so this set cannot fail; the
        // fallback keeps the builder-style API total.
        let _ = self.elmore.set(params);
        self
    }

    /// The net this context describes.
    #[inline]
    pub fn net(&self) -> &'a Net {
        self.net
    }

    /// The validated path-length window.
    #[inline]
    pub fn constraint(&self) -> &PathConstraint {
        &self.constraint
    }

    /// The raw `eps` behind the constraint (used by the per-node-bound
    /// constructions BPRIM and BRBC).
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The Prim/Dijkstra blend parameter `c`.
    #[inline]
    pub fn pd_blend(&self) -> f64 {
        self.pd_blend
    }

    /// The configured edge-candidate supply knob.
    #[inline]
    pub fn edge_supply(&self) -> EdgeSupply {
        self.supply
    }

    /// Whether the sparse (neighbor-index) supply is active for this net:
    /// the knob resolved against the terminal count.
    #[inline]
    pub fn sparse_active(&self) -> bool {
        self.supply.is_sparse_for(self.net.len())
    }

    /// Distance between terminals `i` and `j`: a matrix lookup when the
    /// dense matrix is already cached, an on-demand metric evaluation
    /// otherwise. Both give bit-identical values (the matrix stores the
    /// same `Metric::dist` results), so callers never need to force the
    /// `O(n²)` materialization just to read a handful of distances.
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        match self.matrix.get() {
            Some(m) => m[(i, j)],
            None => self.net.dist(i, j),
        }
    }

    /// The grid-bucket neighbor index over the net's terminals, built on
    /// first use. The `context.neighbor_index` span covers only the
    /// actual `O(n)` construction, not cache hits.
    pub fn neighbor_index(&self) -> &NeighborIndex<'a> {
        self.neighbor_index.get_or_init(|| {
            let _span = bmst_obs::span("context.neighbor_index");
            NeighborIndex::new(self.net.points(), self.net.metric())
        })
    }

    /// The complete terminal graph's edges in canonical nondecreasing
    /// `(weight, u, v)` order, served by the active supply: a walk over
    /// the cached [`ProblemContext::sorted_edges`] list when dense,
    /// lazy expanding-window generation from the neighbor index when
    /// sparse. Both yield bit-identical sequences.
    pub fn edge_stream(&self) -> EdgeStream<'_> {
        if self.sparse_active() {
            EdgeStream::sparse(self)
        } else {
            EdgeStream::dense(self.sorted_edges())
        }
    }

    /// The complete-graph distance matrix, computed on first use. The
    /// `context.matrix` span covers only the actual computation, not
    /// cache hits.
    // analyze: complexity(n^2)
    pub fn matrix(&self) -> &DistanceMatrix {
        self.matrix.get_or_init(|| {
            let _span = bmst_obs::span("context.matrix");
            self.net.distance_matrix()
        })
    }

    /// The complete-graph edge list in nondecreasing canonical
    /// `(weight, u, v)` order, computed on first use. The
    /// `context.sorted_edges` span covers only the actual build + sort,
    /// not cache hits.
    // analyze: complexity(n^2)
    pub fn sorted_edges(&self) -> &[Edge] {
        self.sorted_edges.get_or_init(|| {
            let matrix = self.matrix();
            let _span = bmst_obs::span("context.sorted_edges");
            let mut edges = complete_edges(matrix);
            sort_edges(&mut edges);
            edges
        })
    }

    /// Elmore parameters for the delay-domain builders: the value supplied
    /// via [`ProblemContext::with_elmore`], or the default driver model.
    pub fn elmore_params(&self) -> &ElmoreParams {
        self.elmore
            .get_or_init(|| Self::default_elmore_params(self.net))
    }

    /// The adversarial-input validation pass, computed on first use:
    /// exact-coordinate duplicate sinks, sinks coincident with the source,
    /// and zero-radius nets. Empty for well-formed geometry. See
    /// [`InputDiagnostic`] for why these are warnings rather than errors.
    ///
    /// Duplicate detection probes the neighbor index (a same-bucket
    /// coincidence scan) instead of the former all-pairs sweep, so the
    /// pass is output-sensitive: linear for clean geometry, and only
    /// degenerate all-coincident nets pay for their duplicates.
    // analyze: complexity(n log n) analyze: allow(cancel-liveness) — memoised OnceLock scan with no error channel; runs once per context
    pub fn diagnostics(&self) -> &[InputDiagnostic] {
        self.diagnostics.get_or_init(|| {
            let mut found = Vec::new();
            let points = self.net.points();
            let source = self.net.source();
            let index = self.neighbor_index();
            let mut coincident_with_source = 0usize;
            let mut num_sinks = 0usize;
            let mut dups = Vec::new();
            for a in self.net.sinks() {
                num_sinks += 1;
                if points[a] == points[source] {
                    coincident_with_source += 1;
                    found.push(InputDiagnostic::SourceCoincidentSink { sink: a });
                }
                // First later sink sharing `a`'s coordinates — the same
                // pair the old ascending all-pairs sweep reported.
                dups.clear();
                index.coincident(a, &mut dups);
                if let Some(&b) = dups.iter().find(|&&b| b > a && b != source) {
                    found.push(InputDiagnostic::DuplicateSinks { a, b });
                }
            }
            if num_sinks > 0 && coincident_with_source == num_sinks {
                found.push(InputDiagnostic::ZeroRadius);
            }
            found
        })
    }

    /// The default Elmore driver/wire model used when no parameters are
    /// supplied: a strong driver with light uniform sink loads, under which
    /// the shortest-path tree (and hence the (1+eps) delay window) is
    /// comfortably feasible on typical nets.
    pub fn default_elmore_params(net: &Net) -> ElmoreParams {
        ElmoreParams::uniform_loads(net.len(), net.source(), 0.1, 0.2, 1.0, 0.5, 1.0)
    }
}

impl std::fmt::Debug for ProblemContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProblemContext")
            .field("nodes", &self.net.len())
            .field("constraint", &self.constraint)
            .field("eps", &self.eps)
            .field("supply", &self.supply)
            .field("matrix_cached", &self.matrix.get().is_some())
            .field("edges_cached", &self.sorted_edges.get().is_some())
            .field("index_cached", &self.neighbor_index.get().is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use bmst_geom::Point;

    fn net() -> Net {
        Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 3.0),
        ])
        .unwrap()
    }

    #[test]
    fn new_validates_eps() {
        let net = net();
        assert!(ProblemContext::new(&net, -0.1).is_err());
        assert!(ProblemContext::new(&net, f64::NAN).is_err());
        let cx = ProblemContext::new(&net, 0.25).unwrap();
        assert_eq!(cx.eps(), 0.25);
        assert_eq!(cx.constraint().upper, net.path_bound(0.25));
    }

    #[test]
    fn matrix_is_computed_once_and_shared() {
        let net = net();
        let cx = ProblemContext::new(&net, 0.5).unwrap();
        let first: *const DistanceMatrix = cx.matrix();
        let second: *const DistanceMatrix = cx.matrix();
        assert!(std::ptr::eq(first, second));
        assert_eq!(cx.matrix()[(0, 1)], net.dist(0, 1));
    }

    #[test]
    fn sorted_edges_are_complete_and_ordered() {
        let net = net();
        let cx = ProblemContext::new(&net, 0.5).unwrap();
        let edges = cx.sorted_edges();
        assert_eq!(edges.len(), net.complete_edge_count());
        for w in edges.windows(2) {
            assert!(w[0].weight <= w[1].weight);
        }
        let again: *const [Edge] = cx.sorted_edges();
        assert!(std::ptr::eq(again, edges as *const [Edge]));
    }

    #[test]
    fn with_constraint_rederives_eps_from_upper() {
        let net = net();
        let c = PathConstraint::from_eps(&net, 0.5).unwrap();
        let cx = ProblemContext::with_constraint(&net, c);
        assert!((cx.eps() - 0.5).abs() < 1e-12);
        let unbounded = ProblemContext::with_constraint(
            &net,
            PathConstraint::from_eps(&net, f64::INFINITY).unwrap(),
        );
        assert!(unbounded.eps().is_infinite());
    }

    #[test]
    fn pd_blend_and_elmore_overrides() {
        let net = net();
        let cx = ProblemContext::new(&net, 0.5).unwrap().with_pd_blend(0.9);
        assert_eq!(cx.pd_blend(), 0.9);
        let params = ElmoreParams::uniform_loads(net.len(), net.source(), 0.3, 0.1, 2.0, 1.0, 1.5);
        let cx = ProblemContext::new(&net, 0.5).unwrap().with_elmore(params);
        assert_eq!(cx.elmore_params().driver_res, 2.0);
    }

    #[test]
    fn diagnostics_empty_for_clean_geometry() {
        let net = net();
        let cx = ProblemContext::new(&net, 0.5).unwrap();
        assert!(cx.diagnostics().is_empty());
        let again: *const [InputDiagnostic] = cx.diagnostics();
        assert!(std::ptr::eq(again, cx.diagnostics() as *const _));
    }

    #[test]
    fn diagnostics_flag_duplicates_and_source_coincidence() {
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 0.0),
        ])
        .unwrap();
        let cx = ProblemContext::new(&net, 0.5).unwrap();
        let diags = cx.diagnostics();
        assert!(diags.contains(&InputDiagnostic::DuplicateSinks { a: 1, b: 2 }));
        assert!(diags.contains(&InputDiagnostic::SourceCoincidentSink { sink: 3 }));
        assert!(!diags.contains(&InputDiagnostic::ZeroRadius));
        let err = InputDiagnostic::SourceCoincidentSink { sink: 3 }.to_error();
        assert!(err.to_string().contains("sink 3"));
        assert!(!err.is_recoverable());
    }

    #[test]
    fn diagnostics_flag_zero_radius() {
        let net = Net::with_source_first(vec![
            Point::new(2.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 2.0),
        ])
        .unwrap();
        let cx = ProblemContext::unbounded(&net);
        let diags = cx.diagnostics();
        assert!(diags.contains(&InputDiagnostic::ZeroRadius));
        assert!(diags.contains(&InputDiagnostic::DuplicateSinks { a: 1, b: 2 }));
        assert_eq!(
            diags
                .iter()
                .filter(|d| matches!(d, InputDiagnostic::SourceCoincidentSink { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn context_is_sync_shareable() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<ProblemContext<'_>>();
    }
}
