//! Lower- and upper-bounded path length spanning trees (paper §6).
//!
//! Clock routing needs both skew and cost control: every source-sink path
//! must lie in the window `[eps1 * R, (1 + eps2) * R]`. Fast paths are as
//! harmful as slow ones (the "double clocking" hazard), and the paper
//! proposes wire-length control instead of buffer insertion.

use bmst_geom::Net;
use bmst_tree::RoutingTree;

use crate::bkrus::run;
use crate::{BmstError, PathConstraint, ProblemContext};

/// BKRUS with simultaneous lower and upper path-length bounds:
/// `eps1 * R <= path(S, x) <= (1 + eps2) * R` for every sink `x`.
///
/// Two mechanisms implement §6 on top of plain BKRUS:
///
/// * **Lemma 6.1** — direct source edges shorter than `eps1 * R` are
///   eliminated up front (they would immediately fix an under-length path);
/// * a merge that connects a partial tree to the source's component fixes
///   `path(S, y)` for every newly attached node, so such merges are also
///   rejected when the shortest newly fixed path (`path(S, u) + w`) falls
///   below the lower bound.
///
/// Because this is a *spanning* heuristic with node branching, many
/// `(eps1, eps2)` combinations admit no solution (the paper's Table 5 "-"
/// entries); those return [`BmstError::Infeasible`].
///
/// `eps1 = 1.0, eps2 = 0.0` requests an exact zero-skew tree in path length:
/// every sink path equal to `R`.
///
/// # Errors
///
/// * [`BmstError::InvalidEpsilon`] / [`BmstError::EmptyBoundWindow`] on bad
///   parameters;
/// * [`BmstError::Infeasible`] when the heuristic cannot span the net within
///   the window.
///
/// # Examples
///
/// ```
/// use bmst_core::lub_bkrus;
/// use bmst_geom::{Net, Point};
///
/// let net = Net::with_source_first(vec![
///     Point::new(0.0, 0.0),
///     Point::new(10.0, 0.0),
///     Point::new(0.0, 9.0),
/// ])?;
/// // All paths within [0.8 * R, 1.2 * R].
/// let t = lub_bkrus(&net, 0.8, 0.2)?;
/// for v in net.sinks() {
///     let p = t.dist_from_root(v);
///     assert!(p >= 8.0 - 1e-9 && p <= 12.0 + 1e-9);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lub_bkrus(net: &Net, eps1: f64, eps2: f64) -> Result<RoutingTree, BmstError> {
    let constraint = PathConstraint::from_eps_window(net, eps1, eps2)?;
    let cx = ProblemContext::with_constraint(net, constraint);
    let tree = run(&cx, None)?;
    // The merge conditions enforce the window during construction, but the
    // final tree is re-validated so any gap in the incremental reasoning
    // surfaces as an error rather than a silently out-of-window tree.
    if constraint.is_satisfied_by(&tree, net.sinks()) {
        Ok(tree)
    } else {
        Err(BmstError::Infeasible {
            connected: net.len(),
            total: net.len(),
            min_feasible_eps: None,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::{bkrus, mst_tree};
    use bmst_geom::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_net(seed: u64, n: usize) -> Net {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        Net::with_source_first(pts).unwrap()
    }

    #[test]
    fn window_respected_when_feasible() {
        let mut feasible = 0;
        for seed in 0..10 {
            let net = random_net(seed, 10);
            let r = net.source_radius();
            if let Ok(t) = lub_bkrus(&net, 0.3, 1.0) {
                feasible += 1;
                for v in net.sinks() {
                    let p = t.dist_from_root(v);
                    assert!(
                        p >= 0.3 * r - 1e-9,
                        "seed {seed} node {v}: {p} < {}",
                        0.3 * r
                    );
                    assert!(p <= 2.0 * r + 1e-9, "seed {seed} node {v}");
                }
            }
        }
        assert!(feasible > 0, "loose window should usually be feasible");
    }

    #[test]
    fn zero_lower_bound_equals_plain_bkrus() {
        let net = random_net(1, 8);
        let a = lub_bkrus(&net, 0.0, 0.5).unwrap();
        let b = bkrus(&net, 0.5).unwrap();
        assert_eq!(a.edges().len(), b.edges().len());
        assert!((a.cost() - b.cost()).abs() < 1e-9);
    }

    #[test]
    fn zero_skew_line_net() {
        // Sinks symmetric around the source: paths of exactly R exist via
        // direct edges.
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(-10.0, 0.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap();
        let t = lub_bkrus(&net, 1.0, 0.0).unwrap();
        for v in net.sinks() {
            assert!((t.dist_from_root(v) - 10.0).abs() < 1e-9);
        }
        // Exact zero skew costs N * R here: every sink on its own spoke.
        assert!((t.cost() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_window_reported() {
        // Sinks at wildly different distances, and a window too narrow for
        // the near sink to reach (node branching cannot lengthen its path).
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(100.0, 0.0),
        ])
        .unwrap();
        let res = lub_bkrus(&net, 0.95, 0.0);
        assert!(matches!(res, Err(BmstError::Infeasible { .. })), "{res:?}");
    }

    #[test]
    fn empty_window_rejected() {
        let net = random_net(2, 6);
        assert!(matches!(
            lub_bkrus(&net, 3.0, 0.5),
            Err(BmstError::EmptyBoundWindow { .. })
        ));
    }

    #[test]
    fn cost_at_least_mst_when_feasible() {
        for seed in 0..6 {
            let net = random_net(seed + 40, 8);
            if let Ok(t) = lub_bkrus(&net, 0.2, 0.5) {
                assert!(t.cost() + 1e-9 >= mst_tree(&net).cost());
            }
        }
    }

    #[test]
    fn tighter_lower_bound_costs_more() {
        // The paper's Table 5/Figure 12 trade-off: raising the lower bound
        // forces near sinks onto detours, raising cost. With sinks at 7 and
        // 10 and a [8, 15] window, the near sink must route through the far
        // one (cost 13) instead of taking its direct edge (MST cost 10).
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(7.0, 0.0),
            Point::new(10.0, 0.0),
        ])
        .unwrap();
        let loose = lub_bkrus(&net, 0.0, 0.5).unwrap();
        let tight = lub_bkrus(&net, 0.8, 0.5).unwrap();
        assert!((loose.cost() - 10.0).abs() < 1e-9);
        assert!((tight.cost() - 13.0).abs() < 1e-9);
        // The detour satisfies the window: both sinks in [8, 15].
        for v in net.sinks() {
            let p = tight.dist_from_root(v);
            assert!((8.0 - 1e-9..=15.0 + 1e-9).contains(&p));
        }
    }
}
