//! Bounded path length minimal spanning tree algorithms.
//!
//! This crate implements the primary contribution of *"Constructing Minimal
//! Spanning/Steiner Trees with Bounded Path Length"* (Oh, Pyo, Pedram,
//! ED&TC 1996): routing-tree constructions whose source-to-sink path lengths
//! are bounded by `(1 + eps) * R` (with `R` the direct distance from the
//! source to its farthest sink) while keeping total wirelength close to the
//! minimum spanning tree.
//!
//! # Algorithms
//!
//! | Function | Paper name | Kind |
//! |---|---|---|
//! | [`bkrus`] | BKRUS | Kruskal-analogue heuristic (§3.1) |
//! | [`bkrus_elmore`] | — | BKRUS under the Elmore delay model (§3.2) |
//! | [`bprim`] | BPRIM | bounded-Prim baseline of Cong et al. (§2) |
//! | [`prim_dijkstra`] | AHHK | unbounded Prim/Dijkstra blend of Alpert et al. (§2) |
//! | [`brbc`] | BRBC | bounded-radius-bounded-cost baseline of Cong et al. (§2) |
//! | [`gabow_bmst`] | BMST_G | exact, spanning trees in increasing cost order (§4) |
//! | [`bkex`] | BKEX | exact, iterated negative-sum-exchanges (§5) |
//! | [`bkh2`] | BKH2 | depth-2 negative-sum-exchange local search (§5) |
//! | [`lub_bkrus`] | — | lower *and* upper bounded BKRUS (§6) |
//!
//! plus the baselines every table normalises against: [`mst_tree`],
//! [`spt_tree`], and [`maximal_spanning_tree`].
//!
//! # Contexts and builders
//!
//! The free functions above each derive the complete-graph distance matrix
//! and sorted edge list from scratch. To share that state — across several
//! constructions on one net, or across threads — build a [`ProblemContext`]
//! once and run [`TreeBuilder`]s from the [`registry`] against it; every
//! construction is registered under a stable kebab-case name (see
//! [`BuilderDescriptor`]). The free functions remain as thin shims over the
//! same drivers, so both paths produce bit-identical trees.
//!
//! # Quick start
//!
//! ```
//! use bmst_core::{bkrus, mst_tree, spt_tree};
//! use bmst_geom::{Net, Point};
//!
//! // A source at the origin and sinks spread to its right.
//! let net = Net::with_source_first(vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(10.0, 1.0),
//!     Point::new(11.0, -1.0),
//!     Point::new(12.0, 2.0),
//! ])?;
//!
//! let mst = mst_tree(&net);       // minimal cost, unbounded radius
//! let spt = spt_tree(&net);       // minimal radius, maximal cost
//! let bkt = bkrus(&net, 0.2)?;    // radius <= 1.2 * R, cost near MST
//!
//! assert!(bkt.source_radius() <= 1.2 * net.source_radius() + 1e-9);
//! assert!(bkt.cost() + 1e-9 >= mst.cost());
//! assert!(bkt.cost() <= spt.cost() + 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ahhk;
mod audit;
mod baselines;
mod bkex;
mod bkh2;
mod bkrus;
mod bprim;
mod brbc;
mod builder;
mod cancel;
mod constraint;
mod context;
mod elmore_bkrus;
mod error;
/// Bounded-radius forest partition (§3.1): the cluster structure BKRUS
/// merges into a single bounded tree.
pub mod forest;
mod gabow;
mod lub;
mod stats;
mod supply;

pub use ahhk::prim_dijkstra;
pub use audit::audit_construction;
pub use baselines::{maximal_spanning_tree, mst_tree, spt_tree};
pub use bkex::{bkex, bkex_from, bkex_from_with, BkexConfig};
pub use bkh2::{bkh2, bkh2_elmore, bkh2_from};
pub use bkrus::{bkrus, bkrus_trace, EdgeDecision, TraceEvent};
pub use bprim::bprim;
pub use brbc::brbc;
pub use builder::{
    builders, find_builder, registry, BoundKind, BuilderDescriptor, BuiltGeometry, CostClass,
    TreeBuilder,
};
pub use cancel::CancelToken;
pub use constraint::PathConstraint;
pub use context::{InputDiagnostic, ProblemContext};
pub use elmore_bkrus::{bkrus_elmore, elmore_spt_radius};
pub use error::BmstError;
pub use gabow::{gabow_bmst, gabow_bmst_with, preprocess_edges, GabowConfig, GabowOutcome};
pub use lub::lub_bkrus;
pub use stats::TreeReport;
pub use supply::{EdgeStream, EdgeSupply};
