//! Cooperative cancellation and deadlines for long-running constructions.
//!
//! A [`CancelToken`] is a cheap, cloneable handle (an `Arc` around two
//! atomics plus an optional deadline) that request owners — the router's
//! degradation ladder, `bmst serve` workers — thread into
//! [`crate::ProblemContext`] so that construction inner loops can poll it.
//! Polling a token that was built with [`CancelToken::never`] is a single
//! `Option` check, so the default configuration pays nothing.
//!
//! Cancellation is strictly cooperative: a fired token surfaces as
//! [`BmstError::DeadlineExceeded`], which the error taxonomy treats as
//! terminal (`is_recoverable()` is `false`), so the relaxation ladder
//! stops immediately instead of retrying against a dead deadline.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::BmstError;

/// Shared state behind a non-trivial token.
#[derive(Debug)]
struct Inner {
    /// Set by [`CancelToken::cancel`] or latched by an expired deadline.
    cancelled: AtomicBool,
    /// When the token was armed; used to report `elapsed_ms`.
    armed_at: Instant,
    /// Wall-clock deadline, when the token carries a time budget.
    deadline: Option<Instant>,
    /// The budget that produced `deadline`, for error reporting.
    budget_ms: u64,
    /// Deterministic expiry: when `u64::MAX` this is inert; otherwise each
    /// [`CancelToken::check`] consumes one unit and the token fires once
    /// the count is exhausted. Test/fault-injection knob — wall clocks
    /// make flaky tests, check counts do not.
    checks_left: AtomicU64,
}

/// A cloneable cancellation handle with an optional deadline.
///
/// The default token ([`CancelToken::never`]) never fires and costs one
/// branch per [`CancelToken::check`]. Tokens with a budget fire when the
/// deadline passes; any token fires once [`CancelToken::cancel`] is
/// called. Once fired, a token stays fired.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never fires on its own and cannot be cancelled.
    /// This is the [`Default`] and costs nothing to check.
    pub fn never() -> Self {
        CancelToken { inner: None }
    }

    /// A manually-cancellable token with no deadline. Fires only when
    /// [`CancelToken::cancel`] is called (reported with a budget of 0).
    pub fn manual() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                armed_at: Instant::now(),
                deadline: None,
                budget_ms: 0,
                checks_left: AtomicU64::new(u64::MAX),
            })),
        }
    }

    /// A token that fires once `budget` wall-clock time has elapsed, or
    /// earlier if [`CancelToken::cancel`] is called.
    pub fn with_budget(budget: Duration) -> Self {
        let now = Instant::now();
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                armed_at: now,
                deadline: Some(now + budget),
                budget_ms: u64::try_from(budget.as_millis()).unwrap_or(u64::MAX),
                checks_left: AtomicU64::new(u64::MAX),
            })),
        }
    }

    /// A token that passes exactly `n` calls to [`CancelToken::check`]
    /// and fires on the `n+1`-th. Deterministic by construction — used by
    /// the cancellation proptests and the fault-injection harness, where
    /// a wall-clock deadline would make outcomes timing-dependent.
    pub fn expire_after_checks(n: u64) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                armed_at: Instant::now(),
                deadline: None,
                budget_ms: 0,
                checks_left: AtomicU64::new(n),
            })),
        }
    }

    /// Fires the token. Idempotent; every clone observes the cancellation
    /// on its next [`CancelToken::check`]. A no-op on a never-token.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// Whether the token has fired (without consuming a deterministic
    /// check or latching deadline expiry).
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => inner.cancelled.load(Ordering::Acquire),
        }
    }

    /// Polls the token: `Ok(())` while it has not fired, otherwise the
    /// [`BmstError::DeadlineExceeded`] the construction should surface.
    ///
    /// Constructions call this at outer-loop granularity (per candidate
    /// edge in BKRUS, per attachment step in BPRIM) and the router calls
    /// it at every relaxation-ladder rung.
    pub fn check(&self) -> Result<(), BmstError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.cancelled.load(Ordering::Acquire) {
            return Err(self.expired_error(inner));
        }
        // Deterministic expiry consumes one unit per check; `u64::MAX`
        // marks the knob inert (saturating so an inert token never wraps
        // into a live countdown).
        let previous = inner
            .checks_left
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                if v == u64::MAX {
                    None
                } else {
                    Some(v.saturating_sub(1))
                }
            });
        if previous == Ok(0) {
            inner.cancelled.store(true, Ordering::Release);
            return Err(self.expired_error(inner));
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                inner.cancelled.store(true, Ordering::Release);
                return Err(self.expired_error(inner));
            }
        }
        Ok(())
    }

    /// Builds the error a fired token reports.
    fn expired_error(&self, inner: &Inner) -> BmstError {
        BmstError::DeadlineExceeded {
            elapsed_ms: u64::try_from(inner.armed_at.elapsed().as_millis()).unwrap_or(u64::MAX),
            budget_ms: inner.budget_ms,
        }
    }
}

/// Clones observe the same state; equality is identity of that state.
/// Two never-tokens are equal (both inert), matching the derived
/// `PartialEq` the router's `RouterConfig` relies on.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic
    use super::*;

    #[test]
    fn never_token_never_fires() {
        let t = CancelToken::never();
        for _ in 0..1000 {
            assert!(t.check().is_ok());
        }
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
    }

    #[test]
    fn manual_cancel_is_seen_by_clones() {
        let t = CancelToken::manual();
        let clone = t.clone();
        assert!(clone.check().is_ok());
        t.cancel();
        assert!(clone.is_cancelled());
        match clone.check() {
            Err(BmstError::DeadlineExceeded { budget_ms, .. }) => assert_eq!(budget_ms, 0),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // Once fired, always fired.
        assert!(clone.check().is_err());
    }

    #[test]
    fn deterministic_expiry_counts_checks() {
        let t = CancelToken::expire_after_checks(3);
        assert!(t.check().is_ok());
        assert!(t.check().is_ok());
        assert!(t.check().is_ok());
        assert!(t.check().is_err());
        assert!(t.check().is_err());
    }

    #[test]
    fn zero_budget_deadline_fires_immediately() {
        let t = CancelToken::with_budget(Duration::from_millis(0));
        match t.check() {
            Err(BmstError::DeadlineExceeded { budget_ms, .. }) => assert_eq!(budget_ms, 0),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn generous_budget_does_not_fire() {
        let t = CancelToken::with_budget(Duration::from_secs(3600));
        assert!(t.check().is_ok());
        assert!(!t.is_cancelled());
    }

    #[test]
    fn equality_is_shared_state_identity() {
        assert_eq!(CancelToken::never(), CancelToken::never());
        let a = CancelToken::manual();
        assert_eq!(a, a.clone());
        assert_ne!(a, CancelToken::manual());
        assert_ne!(a, CancelToken::never());
    }
}
