//! BKEX: exact bounded path length MST by iterated negative-sum-exchanges
//! (paper §5).
//!
//! BKEX is a post-processing search: starting from any feasible tree
//! (BKRUS's BKT by default), it looks for a *sequence* of T-exchanges whose
//! weights sum negative and whose final tree is feasible, applies it, and
//! repeats until no such sequence exists. The search tree Σ is explored
//! depth-first; a branch is pruned as soon as its running weight sum becomes
//! non-negative (a cheaper tree can only be reached through strictly
//! improving prefixes of exchanges).
//!
//! The paper reports that on 2 750 random instances depth 2 already reaches
//! 96.9% of optima and depth 6 reaches all of them; [`BkexConfig::max_depth`]
//! exposes that knob (with `None` = unbounded = exact search).

use bmst_geom::{Net, EPS_TOL};
use bmst_graph::Edge;
use bmst_tree::RoutingTree;

use crate::{BmstError, PathConstraint, ProblemContext};

/// Configuration of the negative-sum-exchange search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BkexConfig {
    /// Maximum depth of the exchange sequence explored per iteration.
    /// `2` recovers the BKH2 heuristic's search class; `V - 1` makes the
    /// search exact (every spanning tree is reachable within that many
    /// exchanges). The paper's depth study: depth 2 reaches 96.9% of
    /// optima, 3 reaches 97.3%, 4 reaches 99.7%, and 6 reached every
    /// optimum in its 2 750-case study. The default is 4, the paper's
    /// practical sweet spot; raise it when exactness matters more than
    /// (exponential) runtime.
    pub max_depth: usize,
}

impl Default for BkexConfig {
    fn default() -> Self {
        BkexConfig { max_depth: 4 }
    }
}

impl BkexConfig {
    /// Configuration with the given search depth.
    pub fn with_depth(max_depth: usize) -> Self {
        BkexConfig { max_depth }
    }

    /// The depth that makes the search provably exact for a net of `n`
    /// terminals: `n - 1` T-exchanges reach any spanning tree.
    pub fn exact_for(n: usize) -> Self {
        BkexConfig {
            max_depth: n.saturating_sub(1),
        }
    }
}

/// Exact bounded path length MST via iterated negative-sum-exchanges,
/// starting from the BKRUS tree. See [`bkex_from`] for details.
///
/// # Errors
///
/// Propagates [`bkrus`]'s errors; the exchange phase itself cannot fail.
///
/// # Examples
///
/// ```
/// use bmst_core::{bkex, bkrus, BkexConfig};
/// use bmst_geom::{Net, Point};
///
/// let net = Net::with_source_first(vec![
///     Point::new(0.0, 0.0),
///     Point::new(5.0, 1.0),
///     Point::new(6.0, -1.0),
///     Point::new(7.0, 2.0),
/// ])?;
/// let t = bkex(&net, 0.3, BkexConfig::default())?;
/// assert!(t.cost() <= bkrus(&net, 0.3)?.cost() + 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn bkex(net: &Net, eps: f64, config: BkexConfig) -> Result<RoutingTree, BmstError> {
    let cx = ProblemContext::new(net, eps)?;
    run(&cx, config)
}

/// Context-based BKEX driver: BKRUS start plus the exchange search, both
/// over the shared distance matrix (computed once).
pub(crate) fn run(cx: &ProblemContext<'_>, config: BkexConfig) -> Result<RoutingTree, BmstError> {
    let start = crate::bkrus::run(cx, None)?;
    let constraint = *cx.constraint();
    let sinks: Vec<usize> = cx.net().sinks().collect();
    Ok(exchange(
        cx,
        &|t| constraint.is_satisfied_by(t, sinks.iter().copied()),
        start,
        config,
    ))
}

/// Improves a feasible tree by iterated negative-sum-exchange search
/// (Algorithm BKEX / DFS_EXCHANGE of the paper).
///
/// Each iteration performs a depth-first search over T-exchange sequences:
/// for every non-tree edge `(x, y)`, the tree edges on the cycle it closes
/// are enumerated by walking from the deeper endpoint towards the common
/// ancestor (the paper's `(v, FA[v])` pairs). An exchange is explored only
/// while the running weight sum stays strictly negative; when an explored
/// tree is both cheaper and feasible it becomes the new incumbent and the
/// search restarts from it. Terminates because every accepted iteration
/// strictly decreases the (finitely valued) tree cost.
///
/// The `start` tree should satisfy `constraint`; if it does not, the result
/// may not either (exchanges only ever commit to feasible trees, but when no
/// improving sequence exists the start tree is returned unchanged).
pub fn bkex_from(
    net: &Net,
    constraint: PathConstraint,
    start: RoutingTree,
    config: BkexConfig,
) -> RoutingTree {
    let cx = ProblemContext::with_constraint(net, constraint);
    let sinks: Vec<usize> = net.sinks().collect();
    exchange(
        &cx,
        &|t| constraint.is_satisfied_by(t, sinks.iter().copied()),
        start,
        config,
    )
}

/// The negative-sum-exchange search under an *arbitrary* feasibility
/// predicate.
///
/// This generalisation lets the same machinery post-optimise trees under
/// models the geometric [`PathConstraint`] cannot express — most notably
/// the Elmore delay bound of §3.2 (see [`crate::bkh2_elmore`]). The
/// predicate is consulted once per candidate tree; expensive predicates
/// (like a full Elmore evaluation) simply make the search proportionally
/// slower.
///
/// The `start` tree should satisfy the predicate; only predicate-satisfying
/// trees are ever committed.
pub fn bkex_from_with(
    net: &Net,
    feasible: &dyn Fn(&RoutingTree) -> bool,
    start: RoutingTree,
    config: BkexConfig,
) -> RoutingTree {
    let cx = ProblemContext::unbounded(net);
    exchange(&cx, feasible, start, config)
}

/// The exchange search proper, drawing the distance matrix from the
/// caller's [`ProblemContext`] so a construction + post-processing pipeline
/// computes it exactly once.
pub(crate) fn exchange(
    cx: &ProblemContext<'_>,
    feasible: &dyn Fn(&RoutingTree) -> bool,
    start: RoutingTree,
    config: BkexConfig,
) -> RoutingTree {
    let net = cx.net();
    let d = cx.matrix();
    let mut incumbent = start;
    let _obs_span = bmst_obs::span("bkex");
    let mut committed = 0u64;
    while let Some(better) = dfs_exchange(net, d, feasible, &incumbent, 0.0, 0, config.max_depth) {
        debug_assert!(better.cost() < incumbent.cost());
        incumbent = better;
        committed += 1;
        // Poll between committed rounds: a deadline keeps the improved
        // incumbent instead of abandoning the search mid-exchange.
        if cx.check_cancelled().is_err() {
            break;
        }
    }
    if bmst_obs::enabled() {
        bmst_obs::counter("bkex.exchanges_committed", committed);
    }
    // The predicate is arbitrary, so only the structural and merge
    // invariants are audited here.
    crate::audit::debug_audit(net, &incumbent, None);
    incumbent
}

/// One level of the paper's `DFS_EXCHANGE(T, weight_sum)`. Returns a
/// feasible tree strictly cheaper than the iteration's root, if one is
/// reachable through negative-prefix exchange sequences from `tree`.
#[allow(clippy::expect_used)] // cycle-walk invariants, justified inline
                              // analyze: complexity(n^3) analyze: allow(cancel-liveness) — depth-bounded by max_depth; exchange polls between committed rounds
fn dfs_exchange(
    net: &Net,
    d: &bmst_geom::DistanceMatrix,
    feasible: &dyn Fn(&RoutingTree) -> bool,
    tree: &RoutingTree,
    weight_sum: f64,
    depth: usize,
    max_depth: usize,
) -> Option<RoutingTree> {
    if depth >= max_depth {
        return None;
    }
    let n = net.len();
    // "for each edge (x, y) in G - T" in canonical order.
    for x in 0..n {
        for y in (x + 1)..n {
            if tree.contains_edge(x, y) {
                continue;
            }
            let add_w = d[(x, y)];
            // Walk from the deeper endpoint towards the common ancestor,
            // pairing (v, FA[v]) tree edges with the candidate (x, y).
            let mut u = x;
            let mut v = y;
            while u != v {
                if tree.depth(u) > tree.depth(v) {
                    std::mem::swap(&mut u, &mut v);
                }
                // v is now at least as deep as u; its father edge lies on
                // the cycle closed by (x, y).
                let removed_w = tree.parent_edge_weight(v);
                let diff = add_w - removed_w;
                bmst_obs::counter(
                    if weight_sum + diff < -EPS_TOL {
                        "bkex.candidates_explored"
                    } else {
                        "bkex.pruned_nonneg"
                    },
                    1,
                );
                if weight_sum + diff < -EPS_TOL {
                    let candidate = tree
                        .apply_exchange(v, Edge::new(x, y, add_w))
                        // lint: allow(no-panic) — (x, y) closes the cycle through v, so the exchange reconnects
                        .expect("cycle edges always reconnect");
                    if feasible(&candidate) {
                        return Some(candidate);
                    }
                    if let Some(found) = dfs_exchange(
                        net,
                        d,
                        feasible,
                        &candidate,
                        weight_sum + diff,
                        depth + 1,
                        max_depth,
                    ) {
                        return Some(found);
                    }
                }
                // lint: allow(no-panic) — the loop exits at the LCA before v can reach the root
                v = tree.parent(v).expect("walk stops at the common ancestor");
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::{bkrus, gabow_bmst, mst_tree};
    use bmst_geom::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_net(seed: u64, n: usize) -> Net {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)))
            .collect();
        Net::with_source_first(pts).unwrap()
    }

    #[test]
    fn matches_gabow_optimum_on_random_nets() {
        // At the exact depth (V - 1) BKEX must match the Gabow optimum on
        // every instance.
        for seed in 0..8 {
            let net = random_net(seed, 6);
            for eps in [0.0, 0.2, 0.5] {
                let exact = gabow_bmst(&net, eps).unwrap().cost();
                let ex = bkex(&net, eps, BkexConfig::exact_for(net.len()))
                    .unwrap()
                    .cost();
                assert!(
                    (exact - ex).abs() < 1e-9,
                    "seed {seed} eps {eps}: bkex {ex} vs gabow {exact}"
                );
            }
        }
    }

    #[test]
    fn result_is_feasible_and_no_worse_than_start() {
        for seed in 0..5 {
            let net = random_net(seed + 50, 9);
            let eps = 0.1;
            let start = bkrus(&net, eps).unwrap();
            let c = PathConstraint::from_eps(&net, eps).unwrap();
            let out = bkex_from(&net, c, start.clone(), BkexConfig::default());
            assert!(out.cost() <= start.cost() + 1e-9);
            assert!(out.source_radius() <= (1.0 + eps) * net.source_radius() + 1e-9);
        }
    }

    #[test]
    fn figure5_example_needs_exchange() {
        // The paper's Figure 5: BKRUS greedily takes a-b and ends at 19.9;
        // the optimum (19.5) requires rejecting a-b, reachable by exchange.
        // We construct a net with the same structure: an attractive
        // sink-sink edge that a bounded tree is better off without.
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),  // S
            Point::new(4.0, 2.8),  // a
            Point::new(4.0, -0.6), // b : d(a,b) = 3.4 is the cheapest edge
            Point::new(3.4, 0.6),  // c : hub near both
        ])
        .unwrap();
        let eps = 0.25;
        let heur = bkrus(&net, eps).unwrap();
        let ex = bkex(&net, eps, BkexConfig::default()).unwrap();
        let opt = gabow_bmst(&net, eps).unwrap();
        assert!((ex.cost() - opt.cost()).abs() < 1e-9);
        assert!(ex.cost() <= heur.cost() + 1e-9);
    }

    #[test]
    fn depth_limited_search_is_weaker_or_equal() {
        for seed in 0..6 {
            let net = random_net(seed + 200, 7);
            let eps = 0.1;
            let d1 = bkex(&net, eps, BkexConfig::with_depth(1)).unwrap().cost();
            let d2 = bkex(&net, eps, BkexConfig::with_depth(2)).unwrap().cost();
            let dfull = bkex(&net, eps, BkexConfig::with_depth(3)).unwrap().cost();
            assert!(d2 <= d1 + 1e-9);
            assert!(dfull <= d2 + 1e-9);
        }
    }

    #[test]
    fn unbounded_eps_keeps_mst() {
        // The BKRUS start is already the MST; no negative exchange exists on
        // an MST (classic exchange optimality), so BKEX returns it.
        let net = random_net(3, 10);
        let t = bkex(&net, f64::INFINITY, BkexConfig::default()).unwrap();
        assert!((t.cost() - mst_tree(&net).cost()).abs() < 1e-9);
    }

    #[test]
    fn depth_zero_is_identity() {
        let net = random_net(4, 8);
        let eps = 0.2;
        let start = bkrus(&net, eps).unwrap();
        let c = PathConstraint::from_eps(&net, eps).unwrap();
        let out = bkex_from(&net, c, start.clone(), BkexConfig::with_depth(0));
        assert_eq!(out.cost(), start.cost());
    }

    #[test]
    fn trivial_nets() {
        let net = Net::with_source_first(vec![Point::new(0.0, 0.0)]).unwrap();
        assert_eq!(bkex(&net, 0.0, BkexConfig::default()).unwrap().cost(), 0.0);
        let net = Net::with_source_first(vec![Point::new(0.0, 0.0), Point::new(1.0, 2.0)]).unwrap();
        assert_eq!(bkex(&net, 0.0, BkexConfig::default()).unwrap().cost(), 3.0);
    }
}
