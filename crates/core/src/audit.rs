//! Construction-time invariant auditing.
//!
//! Every construction in this crate finishes by handing its tree to
//! [`debug_audit`], which in debug builds recomputes the tree's derived
//! state and checks the paper's path bounds via
//! [`RoutingTree::audit`](bmst_tree::RoutingTree::audit). Release builds
//! compile the hook away; the CLI re-exposes the same check behind an
//! explicit `--audit` flag through [`audit_construction`].

use bmst_geom::Net;
use bmst_tree::{AuditContext, AuditViolation, RoutingTree};

use crate::PathConstraint;

/// Audits a tree constructed from `net` against the full invariant set:
/// structure, derived tables, §3.1 merge consistency against the net's
/// metric, and — when a `constraint` is given — the paper's path window
/// `lower <= path(S, x) <= upper` over the net's sinks.
///
/// Pass `None` for constructions whose feasibility is not a geometric path
/// window (Elmore-delay variants, unconstrained baselines).
///
/// # Errors
///
/// The first [`AuditViolation`] found, if any.
pub fn audit_construction(
    net: &Net,
    tree: &RoutingTree,
    constraint: Option<&PathConstraint>,
) -> Result<(), AuditViolation> {
    let d = net.distance_matrix();
    let mut ctx = AuditContext::default().with_distances(&d);
    if let Some(c) = constraint {
        if c.upper.is_finite() {
            ctx = ctx.with_upper_bound(c.upper);
        }
        if c.lower > 0.0 {
            ctx = ctx.with_lower_bound(c.lower);
        }
    }
    tree.audit(&ctx)
}

/// Debug-build audit hook: panics when a construction hands back a tree
/// that fails [`audit_construction`]. Compiled out of release builds.
#[inline]
pub(crate) fn debug_audit(net: &Net, tree: &RoutingTree, constraint: Option<&PathConstraint>) {
    #[cfg(debug_assertions)]
    if let Err(violation) = audit_construction(net, tree, constraint) {
        // lint: allow(no-panic) — debug-only invariant check; a failed audit is a construction bug
        panic!("construction audit failed: {violation}");
    }
    #[cfg(not(debug_assertions))]
    let _ = (net, tree, constraint);
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use bmst_geom::Point;
    use bmst_graph::Edge;

    fn net() -> Net {
        Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 3.0),
        ])
        .unwrap()
    }

    #[test]
    fn metric_tree_passes() {
        let net = net();
        let tree = crate::mst_tree(&net);
        assert!(audit_construction(&net, &tree, None).is_ok());
    }

    #[test]
    fn non_metric_edge_weight_fails() {
        let net = net();
        // d(0, 1) = 4 in L1, but the edge claims 1.0.
        let tree = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 3.0)])
            .unwrap();
        let err = audit_construction(&net, &tree, None).unwrap_err();
        assert!(
            matches!(err, AuditViolation::MergeInconsistent { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn constraint_window_is_enforced() {
        let net = net();
        let tree = crate::spt_tree(&net);
        // SPT paths are the direct distances 4 and 7; a window demanding
        // at least 5 rejects the near sink.
        let c = PathConstraint {
            lower: 5.0,
            upper: 100.0,
        };
        let err = audit_construction(&net, &tree, Some(&c)).unwrap_err();
        assert!(
            matches!(err, AuditViolation::LowerBoundViolated { node: 1, .. }),
            "got {err:?}"
        );
        // The unconstrained audit passes.
        assert!(audit_construction(&net, &tree, None).is_ok());
    }
}
