//! Path-length constraint windows.

use bmst_geom::{le_tol, Net};
use bmst_tree::RoutingTree;

use crate::BmstError;

/// A window of admissible source-to-sink path lengths.
///
/// The plain BMST problem uses only the upper bound `(1 + eps) * R`; the
/// clock-routing extension of §6 adds a lower bound `eps1 * R` so both the
/// longest and shortest interconnection paths are controlled.
///
/// # Examples
///
/// ```
/// use bmst_core::PathConstraint;
/// use bmst_geom::{Net, Point};
///
/// let net = Net::with_source_first(vec![
///     Point::new(0.0, 0.0),
///     Point::new(10.0, 0.0),
/// ])?;
/// let c = PathConstraint::from_eps(&net, 0.5)?;
/// assert_eq!(c.upper, 15.0);
/// assert_eq!(c.lower, 0.0);
///
/// let lub = PathConstraint::from_eps_window(&net, 0.5, 0.5)?;
/// assert_eq!(lub.lower, 5.0);
/// assert_eq!(lub.upper, 15.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathConstraint {
    /// Minimum admissible source-to-sink path length (`eps1 * R`; `0.0` when
    /// only the upper bound is in force).
    pub lower: f64,
    /// Maximum admissible source-to-sink path length (`(1 + eps) * R`).
    pub upper: f64,
}

impl PathConstraint {
    /// Upper bound only: `path(S, x) <= (1 + eps) * R`.
    ///
    /// `eps = f64::INFINITY` produces an unbounded constraint (the MST
    /// regime written `eps = inf` in the paper's tables).
    ///
    /// # Errors
    ///
    /// [`BmstError::InvalidEpsilon`] when `eps` is negative or NaN.
    pub fn from_eps(net: &Net, eps: f64) -> Result<Self, BmstError> {
        if eps.is_nan() || eps < 0.0 {
            return Err(BmstError::InvalidEpsilon { eps });
        }
        Ok(PathConstraint {
            lower: 0.0,
            upper: net.path_bound(eps),
        })
    }

    /// Two-sided window: `eps1 * R <= path(S, x) <= (1 + eps2) * R`
    /// (the paper's §6).
    ///
    /// # Errors
    ///
    /// * [`BmstError::InvalidEpsilon`] when either epsilon is negative/NaN;
    /// * [`BmstError::EmptyBoundWindow`] when `eps1 > 1 + eps2`, i.e. the
    ///   window is empty.
    pub fn from_eps_window(net: &Net, eps1: f64, eps2: f64) -> Result<Self, BmstError> {
        if eps1.is_nan() || eps1 < 0.0 {
            return Err(BmstError::InvalidEpsilon { eps: eps1 });
        }
        if eps2.is_nan() || eps2 < 0.0 {
            return Err(BmstError::InvalidEpsilon { eps: eps2 });
        }
        let r = net.source_radius();
        let (lower, upper) = (eps1 * r, net.path_bound(eps2));
        if lower > upper {
            return Err(BmstError::EmptyBoundWindow { lower, upper });
        }
        Ok(PathConstraint { lower, upper })
    }

    /// Explicit bounds (used by the Elmore extension where the bound is a
    /// delay, not a geometric length).
    ///
    /// # Errors
    ///
    /// [`BmstError::EmptyBoundWindow`] when `lower > upper`.
    pub fn explicit(lower: f64, upper: f64) -> Result<Self, BmstError> {
        if lower > upper {
            return Err(BmstError::EmptyBoundWindow { lower, upper });
        }
        Ok(PathConstraint { lower, upper })
    }

    /// Returns `true` when a lower bound is in force.
    #[inline]
    pub fn has_lower(&self) -> bool {
        self.lower > 0.0
    }

    /// Returns `true` when `len` lies in the window (tolerantly).
    #[inline]
    pub fn admits(&self, len: f64) -> bool {
        le_tol(self.lower, len) && le_tol(len, self.upper)
    }

    /// Checks a complete tree: every node in `sinks` must have an in-window
    /// source path length.
    ///
    /// # Panics
    ///
    /// Panics if a sink is not covered by the tree.
    pub fn is_satisfied_by(
        &self,
        tree: &RoutingTree,
        sinks: impl IntoIterator<Item = usize>,
    ) -> bool {
        sinks
            .into_iter()
            .all(|v| self.admits(tree.dist_from_root(v)))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use bmst_geom::Point;
    use bmst_graph::Edge;

    fn net() -> Net {
        Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 4.0),
        ])
        .unwrap()
    }

    #[test]
    fn from_eps_computes_bound() {
        let c = PathConstraint::from_eps(&net(), 0.3).unwrap();
        assert!((c.upper - 13.0).abs() < 1e-12);
        assert!(!c.has_lower());
    }

    #[test]
    fn infinite_eps_unbounded() {
        let c = PathConstraint::from_eps(&net(), f64::INFINITY).unwrap();
        assert!(c.upper.is_infinite());
        assert!(c.admits(1e300));
    }

    #[test]
    fn negative_eps_rejected() {
        assert!(matches!(
            PathConstraint::from_eps(&net(), -0.1),
            Err(BmstError::InvalidEpsilon { .. })
        ));
        assert!(matches!(
            PathConstraint::from_eps(&net(), f64::NAN),
            Err(BmstError::InvalidEpsilon { .. })
        ));
    }

    #[test]
    fn window_bounds() {
        let c = PathConstraint::from_eps_window(&net(), 0.5, 0.2).unwrap();
        assert_eq!(c.lower, 5.0);
        assert_eq!(c.upper, 12.0);
        assert!(c.has_lower());
        assert!(c.admits(5.0));
        assert!(c.admits(12.0));
        assert!(!c.admits(4.9));
        assert!(!c.admits(12.1));
    }

    #[test]
    fn empty_window_rejected() {
        // eps1 = 2.0 => lower = 20, upper = (1 + 0) * 10 = 10.
        assert!(matches!(
            PathConstraint::from_eps_window(&net(), 2.0, 0.0),
            Err(BmstError::EmptyBoundWindow { .. })
        ));
    }

    #[test]
    fn explicit_rejects_inverted() {
        assert!(PathConstraint::explicit(1.0, 2.0).is_ok());
        assert!(PathConstraint::explicit(3.0, 2.0).is_err());
    }

    #[test]
    fn is_satisfied_by_checks_sinks_only() {
        let net = net();
        let star = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 1, 10.0), Edge::new(0, 2, 4.0)])
            .unwrap();
        let c = PathConstraint::from_eps(&net, 0.0).unwrap();
        assert!(c.is_satisfied_by(&star, net.sinks()));
        let lub = PathConstraint::explicit(5.0, 10.0).unwrap();
        // Sink 2 at distance 4 violates the lower bound.
        assert!(!lub.is_satisfied_by(&star, net.sinks()));
        assert!(lub.is_satisfied_by(&star, [1]));
    }

    #[test]
    fn admits_is_tolerant() {
        let c = PathConstraint::explicit(1.0, 2.0).unwrap();
        assert!(c.admits(2.0 + 1e-12));
        assert!(c.admits(1.0 - 1e-12));
    }
}
