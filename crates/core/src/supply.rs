//! Edge-candidate supply: dense vs. lazily-generated sparse edge streams.
//!
//! Every Kruskal-style construction consumes the complete terminal graph's
//! edges in the canonical nondecreasing `(weight, u, v)` order, but almost
//! never all of them — BKRUS stops at `V - 1` acceptances. The dense
//! supply materializes and sorts all `n(n-1)/2` edges up front
//! (`O(n² log n)`); the sparse supply generates the same sequence
//! incrementally from the [`NeighborIndex`], in expanding weight windows,
//! paying only for the prefix actually consumed.
//!
//! Both supplies yield **bit-identical** sequences: edge weights come from
//! the same `Metric::dist` evaluations the distance matrix stores, the
//! canonical order is a strict total order (`total_cmp` plus endpoint
//! tie-breaks), and the expanding half-open weight windows `(t0, t1],
//! (t1, t2], …` partition the edge set — equal-weight ties always land in
//! the same window, so sorting each window locally reproduces the global
//! sort exactly. The registry golden tests and the sparse/dense
//! equivalence proptests pin this.

use bmst_geom::NeighborIndex;
use bmst_graph::{sort_edges, Edge};

use crate::cancel::CancelToken;
use crate::ProblemContext;

/// Which edge-candidate supply a [`ProblemContext`] hands to builders.
///
/// `Auto` (the default) picks the sparse supply once a net is large enough
/// for the dense matrix + full edge sort to dominate, and stays dense for
/// small nets where the flat matrix is faster than index queries. Both
/// paths produce bit-identical trees; the knob only trades construction
/// time and memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EdgeSupply {
    /// Size-based choice: dense below [`EdgeSupply::AUTO_SPARSE_MIN`]
    /// terminals, sparse at or above it.
    #[default]
    Auto,
    /// Always materialize the dense distance matrix and fully sorted edge
    /// list (the exact-parity fallback; fastest for small nets).
    Dense,
    /// Always generate edges lazily from the grid neighbor index.
    Sparse,
}

impl EdgeSupply {
    /// Terminal count at which `Auto` switches to the sparse supply.
    ///
    /// Below this the dense matrix fits comfortably in cache and beats
    /// per-query index arithmetic; above it the `O(n²)` materialization
    /// dominates construction time.
    pub const AUTO_SPARSE_MIN: usize = 128;

    /// Resolves the knob for a net with `num_nodes` terminals.
    #[inline]
    pub fn is_sparse_for(self, num_nodes: usize) -> bool {
        match self {
            EdgeSupply::Dense => false,
            EdgeSupply::Sparse => true,
            EdgeSupply::Auto => num_nodes >= Self::AUTO_SPARSE_MIN,
        }
    }

    /// Stable lowercase name (used in bench record keys and reports).
    pub fn name(self) -> &'static str {
        match self {
            EdgeSupply::Auto => "auto",
            EdgeSupply::Dense => "dense",
            EdgeSupply::Sparse => "sparse",
        }
    }
}

/// An iterator over the complete terminal graph's edges in canonical
/// nondecreasing `(weight, u, v)` order, backed by either supply.
///
/// Obtained from [`ProblemContext::edge_stream`]. The dense backing walks
/// the cached sorted edge list; the sparse backing generates edges in
/// expanding weight windows from the neighbor index (each window's
/// generation runs under the `context.edge_stream` span).
pub struct EdgeStream<'c> {
    imp: StreamImpl<'c>,
}

enum StreamImpl<'c> {
    Dense(std::iter::Copied<std::slice::Iter<'c, Edge>>),
    Sparse(SparseEdgeStream<'c>),
}

impl<'c> EdgeStream<'c> {
    pub(crate) fn dense(sorted: &'c [Edge]) -> Self {
        EdgeStream {
            imp: StreamImpl::Dense(sorted.iter().copied()),
        }
    }

    pub(crate) fn sparse(cx: &'c ProblemContext<'_>) -> Self {
        EdgeStream {
            imp: StreamImpl::Sparse(SparseEdgeStream::new(
                cx.neighbor_index(),
                cx.cancel_token().clone(),
            )),
        }
    }
}

impl Iterator for EdgeStream<'_> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        match &mut self.imp {
            StreamImpl::Dense(it) => it.next(),
            StreamImpl::Sparse(s) => s.next(),
        }
    }
}

/// Lazy increasing-weight edge generation over a [`NeighborIndex`].
///
/// Maintains a half-open weight window `(lo, hi]` that starts at the
/// index's cell size (the expected nearest-neighbor length) and doubles
/// until it covers the diameter bound. Each refill collects every edge
/// whose weight falls in the window, sorts it canonically, and serves it
/// out; concatenated windows reproduce the globally sorted edge list
/// bit-for-bit (see the module docs for why ties cannot straddle a
/// window).
struct SparseEdgeStream<'c> {
    index: &'c NeighborIndex<'c>,
    lo: f64,
    hi: f64,
    exhausted: bool,
    batch: Vec<Edge>,
    pos: usize,
    scratch: Vec<(f64, usize)>,
    /// Window generation is the stream's only multi-millisecond
    /// uncancellable stretch at scale, so refills poll the context's
    /// token and end the stream early once it fires. Consumers observe a
    /// truncated sequence and surface the fired token through their own
    /// post-loop [`crate::ProblemContext::check_cancelled`] poll.
    cancel: CancelToken,
}

impl<'c> SparseEdgeStream<'c> {
    fn new(index: &'c NeighborIndex<'c>, cancel: CancelToken) -> Self {
        let diameter = index.diameter_bound();
        // First window: the expected nearest-neighbor scale, floored away
        // from zero so doubling always terminates, capped at the diameter
        // (degenerate all-coincident nets have diameter 0 and emit their
        // zero-weight edges in the single window (-1, 0]).
        let first = index
            .cell_size()
            .max(diameter * 1e-6)
            .max(f64::MIN_POSITIVE);
        SparseEdgeStream {
            index,
            lo: -1.0,
            hi: first.min(diameter),
            exhausted: false,
            batch: Vec::new(),
            pos: 0,
            scratch: Vec::new(),
            cancel,
        }
    }

    /// Marks the stream exhausted because the cancel token fired; any
    /// partially generated window is dropped (the consumer is about to
    /// abandon the construction anyway).
    fn abort(&mut self) -> bool {
        self.exhausted = true;
        self.batch.clear();
        self.pos = 0;
        false
    }

    /// Generates the next non-empty weight window, or returns `false`
    /// when every window up to the diameter bound has been served (or the
    /// cancel token fired mid-generation).
    // analyze: complexity(n log n)
    fn refill(&mut self) -> bool {
        while !self.exhausted {
            let _span = bmst_obs::span("context.edge_stream");
            self.batch.clear();
            self.pos = 0;
            for a in 0..self.index.len() {
                // Poll at a stride: one window over a large net is itself
                // a multi-millisecond stretch in debug builds.
                if a & 0xff == 0 && self.cancel.check().is_err() {
                    return self.abort();
                }
                self.scratch.clear();
                self.index
                    .neighbors_in_annulus(a, self.lo, self.hi, &mut self.scratch);
                for &(w, b) in &self.scratch {
                    // Each unordered pair is seen from both endpoints;
                    // keep the `a < b` sighting.
                    if b > a {
                        self.batch.push(Edge::new(a, b, w));
                    }
                }
            }
            sort_edges(&mut self.batch);
            if self.hi >= self.index.diameter_bound() {
                self.exhausted = true;
            } else {
                self.lo = self.hi;
                self.hi = (self.hi * 2.0).min(self.index.diameter_bound());
            }
            if !self.batch.is_empty() {
                return true;
            }
        }
        false
    }
}

impl Iterator for SparseEdgeStream<'_> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        if self.pos >= self.batch.len() && !self.refill() {
            return None;
        }
        let e = self.batch[self.pos];
        self.pos += 1;
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use bmst_geom::{Net, Point};

    fn scatter_net(n: usize) -> Net {
        let mut state = 0xDEAD_BEEF_u64;
        let pts = (0..n)
            .map(|_| {
                let mut next = || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    #[allow(clippy::cast_precision_loss)]
                    // lint: allow(no-as-cast) — test-only pseudo-random scatter
                    let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
                    unit * 100.0
                };
                Point::new(next(), next())
            })
            .collect();
        Net::with_source_first(pts).unwrap()
    }

    #[test]
    fn sparse_stream_equals_dense_sorted_edges() {
        for n in [2, 3, 17, 60] {
            let net = scatter_net(n);
            let cx = ProblemContext::new(&net, 0.5).unwrap();
            let dense: Vec<Edge> = cx.sorted_edges().to_vec();
            let sparse: Vec<Edge> = EdgeStream::sparse(&cx).collect();
            assert_eq!(dense, sparse, "n = {n}");
        }
    }

    #[test]
    fn sparse_stream_handles_coincident_points() {
        let net = Net::with_source_first(vec![Point::new(1.0, 1.0); 4]).unwrap();
        let cx = ProblemContext::unbounded(&net);
        let sparse: Vec<Edge> = EdgeStream::sparse(&cx).collect();
        assert_eq!(sparse, cx.sorted_edges().to_vec());
        assert_eq!(sparse.len(), 6);
        assert!(sparse.iter().all(|e| e.weight == 0.0));
    }

    #[test]
    fn auto_threshold_resolves_by_size() {
        assert!(!EdgeSupply::Auto.is_sparse_for(EdgeSupply::AUTO_SPARSE_MIN - 1));
        assert!(EdgeSupply::Auto.is_sparse_for(EdgeSupply::AUTO_SPARSE_MIN));
        assert!(EdgeSupply::Sparse.is_sparse_for(2));
        assert!(!EdgeSupply::Dense.is_sparse_for(1_000_000));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EdgeSupply::Auto.name(), "auto");
        assert_eq!(EdgeSupply::Dense.name(), "dense");
        assert_eq!(EdgeSupply::Sparse.name(), "sparse");
    }
}
