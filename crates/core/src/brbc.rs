//! BRBC: the bounded-radius-bounded-cost baseline of Cong et al. (paper §2).

use bmst_geom::Net;
use bmst_graph::{dijkstra, prim_mst, AdjacencyList, Edge};
use bmst_tree::RoutingTree;

use crate::{BmstError, PathConstraint, ProblemContext};

/// Constructs a bounded-radius spanning tree with the BRBC algorithm of
/// Cong et al.
///
/// BRBC starts from the MST and walks its depth-first tour from the source,
/// accumulating traversed wirelength. Whenever the accumulated length since
/// the last "shortcut" reaches `eps * dist(S, v)` at a newly visited node
/// `v`, the shortest source path to `v` (the direct edge, in a metric
/// complete graph) is added to a working graph `Q` and the accumulator
/// resets. The returned tree is the shortest path tree of
/// `Q = MST + shortcuts`, which guarantees the radius bound
/// `path(S, v) <= (1 + eps) * R` for every sink (and, per node,
/// `path(S, v) <= (1 + 2 eps) * dist(S, v)` by the triangle inequality
/// along the walk), with `cost <= (1 + 2 / eps) * cost(MST)`.
///
/// The paper notes BRBC "may introduce unnecessary routing cost" because the
/// shortcut paths ignore the tree built so far; its ratios in Table 4 are
/// consistently the worst of the bounded constructions.
///
/// # Errors
///
/// [`BmstError::InvalidEpsilon`] for negative/NaN `eps`.
///
/// # Examples
///
/// ```
/// use bmst_core::brbc;
/// use bmst_geom::{Net, Point};
///
/// let net = Net::with_source_first(vec![
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(4.0, 4.0),
///     Point::new(0.0, 4.0),
/// ])?;
/// let t = brbc(&net, 0.5)?;
/// assert!(t.source_radius() <= 1.5 * net.source_radius() + 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn brbc(net: &Net, eps: f64) -> Result<RoutingTree, BmstError> {
    // Validate eps through the shared constraint machinery.
    let cx = ProblemContext::new(net, eps)?;
    run(&cx)
}

/// Context-based BRBC driver; the shortcut trigger uses the context's raw
/// `eps`, the audit its validated constraint.
#[allow(clippy::expect_used)] // connectivity invariant, justified inline
pub(crate) fn run(cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
    let net = cx.net();
    let eps = cx.eps();
    // BPRIM/BRBC promise only the upper bound; audit with the lower
    // bound dropped so a two-sided window is not mis-attributed to them.
    let constraint = PathConstraint {
        lower: 0.0,
        upper: cx.constraint().upper,
    };
    let n = net.len();
    let s = net.source();
    if n == 1 {
        let tree = RoutingTree::from_edges(1, s, [])?;
        crate::audit::debug_audit(net, &tree, Some(&constraint));
        return Ok(tree);
    }
    let d = cx.matrix();
    let mst = prim_mst(d, s);

    if eps.is_infinite() {
        // No shortcut ever triggers; the result is the MST itself.
        let tree = RoutingTree::from_edges(n, s, mst)?;
        crate::audit::debug_audit(net, &tree, None);
        return Ok(tree);
    }

    // Q starts as the MST.
    let mut q = AdjacencyList::from_edges(n, &mst);
    let mst_tree = RoutingTree::from_edges(n, s, mst.clone())?;

    // Depth-first tour from the source over the MST, accumulating traversed
    // length (forward and backtrack edges both count, as in the Euler tour
    // formulation of BRBC).
    let mut accumulated = 0.0_f64;
    // Iterative DFS that also records backtracking steps.
    enum Step {
        Visit { node: usize, via_len: f64 },
        Backtrack { len: f64 },
    }
    let mut stack = vec![Step::Visit {
        node: s,
        via_len: 0.0,
    }];
    while let Some(step) = stack.pop() {
        match step {
            Step::Backtrack { len } => accumulated += len,
            Step::Visit { node: v, via_len } => {
                accumulated += via_len;
                if v != s {
                    let direct = d[(s, v)];
                    if accumulated >= eps * direct {
                        // Add the shortest source path to v: the direct edge.
                        q.add_edge(s, v, direct);
                        accumulated = 0.0;
                    }
                }
                // Children in reverse order so traversal follows tree order.
                for &c in mst_tree.children(v).iter().rev() {
                    cx.check_cancelled()?;
                    let len = mst_tree.parent_edge_weight(c);
                    stack.push(Step::Backtrack { len });
                    stack.push(Step::Visit {
                        node: c,
                        via_len: len,
                    });
                }
            }
        }
    }

    // Final tree: shortest path tree of Q from the source.
    let sp = dijkstra(&q, s);
    let edges = (0..n).filter(|&v| v != s).map(|v| {
        // lint: allow(no-panic) — Q contains the MST edges, so every node is reachable
        let p = sp.parent[v].expect("Q contains the MST, so it is connected");
        Edge::new(p, v, sp.dist[v] - sp.dist[p])
    });
    let tree = RoutingTree::from_edges(n, s, edges)?;
    crate::audit::debug_audit(net, &tree, Some(&constraint));
    Ok(tree)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::{bkrus, mst_tree, spt_tree};
    use bmst_geom::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_net(seed: u64, n: usize) -> Net {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        Net::with_source_first(pts).unwrap()
    }

    #[test]
    fn radius_bound_holds_per_node() {
        // BRBC's theorem is the global radius bound
        // `path(S, v) <= (1 + eps) * R`; per node the accumulated-walk
        // trigger only yields `path(S, v) <= (1 + 2 eps) * dist(S, v)`
        // (the walk from the last shortcut vertex u to v bounds both the
        // extra wire and, via the triangle inequality, `dist(S, u)`).
        for seed in 0..5 {
            let net = random_net(seed, 12);
            let r = net.source_radius();
            for eps in [0.1, 0.5, 1.0] {
                let t = brbc(&net, eps).unwrap();
                for v in net.sinks() {
                    let path = t.dist_from_root(v);
                    assert!(
                        path <= (1.0 + eps) * r + 1e-9,
                        "seed {seed} eps {eps} node {v}: radius bound"
                    );
                    assert!(
                        path <= (1.0 + 2.0 * eps) * net.dist(net.source(), v) + 1e-9,
                        "seed {seed} eps {eps} node {v}: per-node bound"
                    );
                }
            }
        }
    }

    #[test]
    fn infinite_eps_is_mst() {
        let net = random_net(1, 10);
        let t = brbc(&net, f64::INFINITY).unwrap();
        assert!((t.cost() - mst_tree(&net).cost()).abs() < 1e-9);
    }

    #[test]
    fn eps_zero_is_spt() {
        // Every first visit triggers a shortcut, so Q contains all direct
        // edges and the SPT of Q is the star.
        let net = random_net(2, 8);
        let t = brbc(&net, 0.0).unwrap();
        assert!((t.source_radius() - spt_tree(&net).source_radius()).abs() < 1e-9);
        for v in net.sinks() {
            assert!((t.dist_from_root(v) - net.dist(net.source(), v)).abs() < 1e-9);
        }
    }

    #[test]
    fn cost_bound_holds() {
        // cost(BRBC) <= (1 + 2/eps) * cost(MST).
        for seed in 0..5 {
            let net = random_net(seed + 10, 14);
            for eps in [0.25, 0.5, 1.0] {
                let t = brbc(&net, eps).unwrap();
                let mst = mst_tree(&net).cost();
                assert!(
                    t.cost() <= (1.0 + 2.0 / eps) * mst + 1e-9,
                    "seed {seed} eps {eps}: {} vs {}",
                    t.cost(),
                    mst
                );
            }
        }
    }

    #[test]
    fn bkrus_usually_no_worse_than_brbc() {
        // The paper's Table 4: BKRUS dominates BRBC on average. Check the
        // aggregate over a few seeds rather than each instance.
        let mut bk_total = 0.0;
        let mut br_total = 0.0;
        for seed in 0..8 {
            let net = random_net(seed + 20, 10);
            bk_total += bkrus(&net, 0.2).unwrap().cost();
            br_total += brbc(&net, 0.2).unwrap().cost();
        }
        assert!(
            bk_total <= br_total + 1e-9,
            "BKRUS {bk_total} vs BRBC {br_total}"
        );
    }

    #[test]
    fn negative_eps_rejected() {
        assert!(brbc(&random_net(0, 5), -0.2).is_err());
    }

    #[test]
    fn trivial_nets() {
        let net = Net::with_source_first(vec![Point::new(0.0, 0.0)]).unwrap();
        assert_eq!(brbc(&net, 0.5).unwrap().cost(), 0.0);
        let net = Net::with_source_first(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).unwrap();
        assert_eq!(brbc(&net, 0.5).unwrap().cost(), 1.0);
    }

    #[test]
    fn spanning_and_rooted_at_source() {
        let net = random_net(3, 15);
        let t = brbc(&net, 0.4).unwrap();
        assert!(t.is_spanning());
        assert_eq!(t.root(), net.source());
    }
}
