//! The partial-tree bookkeeping behind BKRUS: disjoint components, the
//! in-tree path matrix `P`, the radius vector `r`, and the paper's `Merge`
//! routine and feasibility conditions (3-a)/(3-b).
//!
//! The Steiner construction (`bmst-steiner`) reuses this machinery with a
//! growing node universe, which is why the module is public.

use bmst_geom::{le_tol, DistanceMatrix, EPS_TOL};
use bmst_graph::DisjointSets;

/// Forest state maintained during a bounded-Kruskal construction.
///
/// For every pair of nodes in the *same* partial tree, `P[x][y]` holds their
/// in-tree path length; `r[x]` holds the radius of `x` within its partial
/// tree (`max_y path(x, y)`); entries across different partial trees are
/// stale zeros exactly as in the paper's formulation. Component membership
/// is tracked by a disjoint-set forest plus explicit member lists so the
/// `Merge` routine can iterate "each `x` in `t_u` and `y` in `t_v`" in
/// `O(|t_u| * |t_v|)`.
///
/// # Examples
///
/// ```
/// use bmst_core::forest::KruskalForest;
///
/// // Three nodes, source 0. Merge 1 and 2 with an edge of length 4.
/// let mut f = KruskalForest::new(3, 0);
/// f.merge(1, 2, 4.0);
/// assert_eq!(f.path(1, 2), 4.0);
/// assert_eq!(f.radius(1), 4.0);
/// assert!(!f.same_component(0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct KruskalForest {
    p: DistanceMatrix,
    r: Vec<f64>,
    dsu: DisjointSets,
    members: Vec<Vec<usize>>,
    source: usize,
    /// Per-root cache of `min over members x of dist_s[x] + r[x]`, used as an
    /// O(1) necessary condition in the (3-b) scan. `NAN` marks a stale entry
    /// (recomputed lazily); `merge` and `add_node` invalidate. Valid only
    /// while the caller keeps feeding the same `dist_s` values for existing
    /// nodes, which every construction does (`dist_s[x]` is the fixed
    /// geometric source distance of node `x`).
    potential: Vec<f64>,
}

impl KruskalForest {
    /// Creates `n` singleton partial trees; node `source` is the source.
    ///
    /// # Panics
    ///
    /// Panics if `source >= n`.
    pub fn new(n: usize, source: usize) -> Self {
        assert!(source < n, "source {source} out of bounds for {n} nodes");
        KruskalForest {
            p: DistanceMatrix::zeros(n),
            r: vec![0.0; n],
            dsu: DisjointSets::new(n),
            members: (0..n).map(|i| vec![i]).collect(),
            source,
            potential: vec![f64::NAN; n],
        }
    }

    /// Number of nodes in the universe.
    #[inline]
    pub fn len(&self) -> usize {
        self.r.len()
    }

    /// Returns `true` when the forest has no nodes (never after `new`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.r.is_empty()
    }

    /// The source node index.
    #[inline]
    pub fn source(&self) -> usize {
        self.source
    }

    /// Number of remaining partial trees.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.dsu.num_sets()
    }

    /// Appends a fresh singleton node (Steiner-grid growth) and returns its
    /// index.
    pub fn add_node(&mut self) -> usize {
        let id = self.dsu.make_set();
        self.p.grow(id + 1);
        self.r.push(0.0);
        self.members.push(vec![id]);
        self.potential.push(f64::NAN);
        id
    }

    /// Returns `true` when `u` and `v` are already in the same partial tree
    /// (the paper's `FIND_SET(u) == FIND_SET(v)`).
    pub fn same_component(&mut self, u: usize, v: usize) -> bool {
        self.dsu.same_set(u, v)
    }

    /// Members of the partial tree containing `u`.
    pub fn component(&mut self, u: usize) -> &[usize] {
        let root = self.dsu.find(u);
        &self.members[root]
    }

    /// Returns `true` when the partial tree containing `u` contains the
    /// source.
    pub fn contains_source(&mut self, u: usize) -> bool {
        self.dsu.same_set(u, self.source)
    }

    /// In-tree path length `P[x][y]`. Meaningful only when `x` and `y` are
    /// in the same partial tree (stale zero otherwise, as in the paper).
    #[inline]
    pub fn path(&self, x: usize, y: usize) -> f64 {
        self.p[(x, y)]
    }

    /// Radius `r[x]` of node `x` within its partial tree.
    #[inline]
    pub fn radius(&self, x: usize) -> f64 {
        self.r[x]
    }

    /// Radius node `x` *would* have in the tree obtained by merging the
    /// components of `u` and `v` with an edge of length `w`.
    ///
    /// The paper's formula: for `x` in `t_u`,
    /// `radius_tM(x) = max(r[x], P[x][u] + w + r[v])`, and symmetrically for
    /// `x` in `t_v`. No actual merge is needed.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `x` is in neither component.
    pub fn merged_radius(&mut self, x: usize, u: usize, v: usize, w: f64) -> f64 {
        if self.dsu.same_set(x, u) {
            self.r[x].max(self.p[(x, u)] + w + self.r[v])
        } else {
            debug_assert!(self.dsu.same_set(x, v), "node {x} is in neither component");
            self.r[x].max(self.p[(x, v)] + w + self.r[u])
        }
    }

    /// The paper's feasibility test for adding edge `(u, v)` of length `w`
    /// under the upper path-length bound `upper`.
    ///
    /// * Condition (3-a): if one component contains the source `S`, every
    ///   node of the other side stays within the bound:
    ///   `path(S, u) + w + radius(v) <= upper` (or symmetrically).
    /// * Condition (3-b): if neither side contains the source, the merged
    ///   tree must keep a *feasible node* `x` with
    ///   `dist(S, x) + radius_tM(x) <= upper`, guaranteeing it can later be
    ///   connected to the source within the bound.
    ///
    /// `dist_s[x]` must hold the *direct* (geometric) distance from the
    /// source to node `x`.
    ///
    /// Returns `true` when the merge is admissible. Does not check the
    /// cycle condition; callers test [`KruskalForest::same_component`]
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `dist_s.len() < self.len()`.
    pub fn is_feasible_merge(
        &mut self,
        u: usize,
        v: usize,
        w: f64,
        dist_s: &[f64],
        upper: f64,
    ) -> bool {
        assert!(dist_s.len() >= self.len(), "dist_s too short");
        if upper.is_infinite() {
            return true;
        }
        let su = self.contains_source(u);
        let sv = self.contains_source(v);
        if su || sv {
            // (3-a): one side contains the source.
            let ok = if su {
                le_tol(self.p[(self.source, u)] + w + self.r[v], upper)
            } else {
                le_tol(self.p[(self.source, v)] + w + self.r[u], upper)
            };
            bmst_obs::counter(
                if ok {
                    "forest.cond3a.accept"
                } else {
                    "forest.cond3a.reject"
                },
                1,
            );
            ok
        } else {
            // (3-b): a feasible node must survive the merge.
            let root_u = self.dsu.find(u);
            let root_v = self.dsu.find(v);
            // Two O(1) *necessary* conditions gate each O(|t|) member scan;
            // both are lower bounds on every value the scan would test, so
            // skipping a side never changes the boolean result:
            //
            // * Triangle inequality: for `x` in `t_u`, `P[x][u] >= d(x, u)`
            //   (it is a sum of metric edge lengths) and
            //   `dist_s[x] + d(x, u) >= dist_s[u]`, so every scanned value
            //   is at least `dist_s[u] + w + r[v]` in exact arithmetic.
            //   Floating-point re-association can shift that bound by a few
            //   ulps, so the comparison gets an extra `EPS_TOL` of slack —
            //   being overly permissive is safe (it just falls through to
            //   the scan).
            // * Cached component potential: `dist_s[x] + rad >= dist_s[x] +
            //   r[x] >= potential` holds bit-exactly, because `rad` is
            //   `r[x].max(..)` and f64 addition is monotone, so the cached
            //   minimum is a true lower bound on the exact expressions the
            //   scan evaluates.
            let u_alive = le_tol(dist_s[u] + w + self.r[v], upper + EPS_TOL)
                && le_tol(self.component_potential(root_u, dist_s), upper);
            let v_alive = le_tol(dist_s[v] + w + self.r[u], upper + EPS_TOL)
                && le_tol(self.component_potential(root_v, dist_s), upper);
            let check = |x: usize, anchor: usize, far_r: f64, p: &DistanceMatrix, r: &[f64]| {
                let rad = r[x].max(p[(x, anchor)] + w + far_r);
                le_tol(dist_s[x] + rad, upper)
            };
            let ok = (u_alive
                && self.members[root_u]
                    .iter()
                    .any(|&x| check(x, u, self.r[v], &self.p, &self.r)))
                || (v_alive
                    && self.members[root_v]
                        .iter()
                        .any(|&x| check(x, v, self.r[u], &self.p, &self.r)));
            bmst_obs::counter(
                if ok {
                    "forest.cond3b.accept"
                } else {
                    "forest.cond3b.reject"
                },
                1,
            );
            ok
        }
    }

    /// Cached `min over members x of dist_s[x] + r[x]` for the component
    /// rooted at `root`, recomputed lazily after a `merge`/`add_node`
    /// invalidation. `f64::min` is commutative over the finite inputs here,
    /// so the fold is order-independent (deterministic).
    fn component_potential(&mut self, root: usize, dist_s: &[f64]) -> f64 {
        let cached = self.potential[root];
        if !cached.is_nan() {
            return cached;
        }
        let pot = self.members[root]
            .iter()
            .fold(f64::INFINITY, |m, &x| m.min(dist_s[x] + self.r[x]));
        self.potential[root] = pot;
        pot
    }

    /// Merges the components of `u` and `v` with an edge of length `w`:
    /// the paper's `Merge(u, v)` followed by `UNION(u, v)`.
    ///
    /// Updates `P[x][y]` for every cross pair
    /// (`P[x][y] = P[x][u] + w + P[v][y]`) and refreshes the radii of all
    /// nodes in the merged tree. `O(|t_u| * |t_v|)`.
    ///
    /// # Panics
    ///
    /// Panics if `u` and `v` are already in the same component (the caller
    /// must have rejected cycle edges) or if `w` is negative/non-finite.
    pub fn merge(&mut self, u: usize, v: usize, w: f64) {
        assert!(
            w.is_finite() && w >= 0.0,
            "edge length must be finite non-negative, got {w}"
        );
        let root_u = self.dsu.find(u);
        let root_v = self.dsu.find(v);
        assert!(root_u != root_v, "merge({u}, {v}) would create a cycle");

        let _span = bmst_obs::enabled().then(|| bmst_obs::span("forest.merge"));

        // Take both member lists out to appease the borrow checker.
        let mu = std::mem::take(&mut self.members[root_u]);
        let mv = std::mem::take(&mut self.members[root_v]);
        if bmst_obs::enabled() {
            let cross = u64::try_from(mu.len().saturating_mul(mv.len())).unwrap_or(u64::MAX);
            bmst_obs::histogram("forest.merge.cross_pairs", cross);
        }

        // Paper's Merge lines 1-3: cross path lengths.
        for &x in &mu {
            let px_u = self.p[(x, u)];
            for &y in &mv {
                let len = px_u + w + self.p[(v, y)];
                self.p[(x, y)] = len;
                self.p[(y, x)] = len;
            }
        }
        // Lines 4-9: refresh radii with the new cross paths.
        for &x in &mu {
            let mut rx = self.r[x];
            for &y in &mv {
                rx = rx.max(self.p[(x, y)]);
            }
            self.r[x] = rx;
        }
        for &y in &mv {
            let mut ry = self.r[y];
            for &x in &mu {
                ry = ry.max(self.p[(x, y)]);
            }
            self.r[y] = ry;
        }

        self.dsu.union(u, v);
        let new_root = self.dsu.find(u);
        let mut merged = mu;
        merged.extend(mv);
        self.members[new_root] = merged;
        // Radii and membership changed: stale both cache slots (only
        // `new_root` is reachable through `find`, but keep both honest).
        self.potential[root_u] = f64::NAN;
        self.potential[root_v] = f64::NAN;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    /// Reproduces the paper's Figure 3 worked example:
    /// t_u = a(0) - b(1) - c(2) - d(3) chained with weights 2, 4, 3;
    /// t_v = e(4) - f(5) with weight 2; merged by edge (c, e) of weight 2.
    fn figure3_forest() -> KruskalForest {
        let mut f = KruskalForest::new(6, 0);
        f.merge(0, 1, 2.0); // a - b
        f.merge(1, 2, 4.0); // b - c
        f.merge(2, 3, 3.0); // c - d
        f.merge(4, 5, 2.0); // e - f
        f
    }

    #[test]
    fn figure3_before_merge() {
        let f = figure3_forest();
        // Matrix P of the paper's "Before Merge" panel.
        assert_eq!(f.path(0, 1), 2.0);
        assert_eq!(f.path(0, 2), 6.0);
        assert_eq!(f.path(0, 3), 9.0);
        assert_eq!(f.path(1, 3), 7.0);
        assert_eq!(f.path(2, 3), 3.0);
        assert_eq!(f.path(4, 5), 2.0);
        // Stale zero across components.
        assert_eq!(f.path(0, 4), 0.0);
        // Radii r = [9, 7, 6, 9, 2, 2].
        let expect = [9.0, 7.0, 6.0, 9.0, 2.0, 2.0];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(f.radius(i), e, "r[{i}]");
        }
    }

    #[test]
    fn figure3_after_merge() {
        let mut f = figure3_forest();
        f.merge(2, 4, 5.0); // edge (c, e) weight 5
                            // "After Merge" matrix entries.
        assert_eq!(f.path(0, 4), 11.0); // P[a][e] = P[a][c] + 5 + P[e][e]
        assert_eq!(f.path(0, 5), 13.0); // P[a][f]
        assert_eq!(f.path(1, 4), 9.0);
        assert_eq!(f.path(1, 5), 11.0);
        assert_eq!(f.path(2, 4), 5.0);
        assert_eq!(f.path(2, 5), 7.0);
        assert_eq!(f.path(3, 4), 8.0);
        assert_eq!(f.path(3, 5), 10.0);
        // Radii r = [13, 11, 7, 10, 11, 13] (paper's "After Merge" panel).
        let expect = [13.0, 11.0, 7.0, 10.0, 11.0, 13.0];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(f.radius(i), e, "r[{i}]");
        }
        assert_eq!(f.num_components(), 1);
    }

    #[test]
    fn merged_radius_matches_actual_merge() {
        let mut f = figure3_forest();
        // Predicted radii for the (c, e) merge...
        let predicted: Vec<f64> = (0..6).map(|x| f.merged_radius(x, 2, 4, 5.0)).collect();
        // ...must equal the radii after actually merging.
        f.merge(2, 4, 5.0);
        for (x, &pred) in predicted.iter().enumerate() {
            assert_eq!(pred, f.radius(x), "node {x}");
        }
    }

    #[test]
    fn singleton_state() {
        let f = KruskalForest::new(4, 0);
        assert_eq!(f.num_components(), 4);
        assert_eq!(f.radius(2), 0.0);
        assert_eq!(f.path(1, 2), 0.0);
    }

    #[test]
    fn component_membership_tracked() {
        let mut f = KruskalForest::new(5, 0);
        f.merge(1, 2, 1.0);
        f.merge(2, 3, 1.0);
        let mut c = f.component(3).to_vec();
        c.sort_unstable();
        assert_eq!(c, vec![1, 2, 3]);
        assert!(f.same_component(1, 3));
        assert!(!f.contains_source(1));
        assert!(f.contains_source(0));
    }

    #[test]
    fn add_node_grows_everything() {
        let mut f = KruskalForest::new(2, 0);
        let id = f.add_node();
        assert_eq!(id, 2);
        assert_eq!(f.len(), 3);
        assert_eq!(f.radius(2), 0.0);
        f.merge(1, 2, 5.0);
        assert_eq!(f.path(1, 2), 5.0);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn merge_same_component_panics() {
        let mut f = KruskalForest::new(3, 0);
        f.merge(0, 1, 1.0);
        f.merge(1, 0, 2.0);
    }

    #[test]
    fn feasibility_3a_source_side() {
        // Source 0 at origin, nodes on a line: 1 at 10, 2 at 11.
        let mut f = KruskalForest::new(3, 0);
        let dist_s = [0.0, 10.0, 11.0];
        f.merge(0, 1, 10.0);
        // Attach 2 under 1 (w = 1): path(S,1) + 1 + r[2] = 11 <= bound?
        assert!(f.is_feasible_merge(1, 2, 1.0, &dist_s, 11.0));
        assert!(!f.is_feasible_merge(1, 2, 1.0, &dist_s, 10.9));
    }

    #[test]
    fn feasibility_3b_non_source_merge() {
        // Nodes 1 and 2 merge away from source; bound must leave a feasible
        // node.
        let mut f = KruskalForest::new(3, 0);
        let dist_s = [0.0, 10.0, 11.0];
        // Merging 1, 2 (w = 1): candidates
        //   x = 1: dist_s[1] + max(r[1], P[1][1] + 1 + r[2]) = 10 + 1 = 11
        //   x = 2: 11 + 1 = 12
        assert!(f.is_feasible_merge(1, 2, 1.0, &dist_s, 11.0));
        assert!(!f.is_feasible_merge(1, 2, 1.0, &dist_s, 10.5));
    }

    #[test]
    fn infinite_bound_always_feasible() {
        let mut f = KruskalForest::new(3, 0);
        assert!(f.is_feasible_merge(1, 2, 1e12, &[0.0; 3], f64::INFINITY));
    }

    #[test]
    fn feasibility_is_tolerant() {
        let mut f = KruskalForest::new(2, 0);
        let dist_s = [0.0, 7.0];
        assert!(f.is_feasible_merge(0, 1, 7.0, &dist_s, 7.0 - 1e-12));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_merge_panics() {
        KruskalForest::new(2, 0).merge(0, 1, -1.0);
    }
}
