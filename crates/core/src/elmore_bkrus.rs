//! BKRUS under the Elmore delay model (paper §3.2).
//!
//! The geometric path length is replaced by the Elmore RC delay. Because the
//! delay from the source to a node depends on the *whole* tree topology and
//! its capacitive load — attaching a subtree raises the delay of every node
//! that shares wire upstream — the incremental `P`/`r` update of geometric
//! BKRUS no longer applies: radii "must be completely recomputed after a
//! tentative merger of the two subtrees", making the feasibility test
//! `O(V^2)` and the whole construction `O(E V^2)`.

use bmst_geom::{le_tol, Net};
use bmst_graph::{DisjointSets, Edge};
use bmst_tree::{elmore, ElmoreDelays, ElmoreParams, RoutingTree};

use crate::{BmstError, ProblemContext};

/// The Elmore reference radius `R`: the worst source-to-sink Elmore delay of
/// the shortest path tree (the star).
///
/// The paper sets the delay bound to `(1 + eps) * R` with this `R`, noting
/// the driver must be strong enough that the SPT itself is a solution.
///
/// # Examples
///
/// ```
/// use bmst_core::elmore_spt_radius;
/// use bmst_geom::{Net, Point};
/// use bmst_tree::ElmoreParams;
///
/// let net = Net::with_source_first(vec![
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
/// ])?;
/// let params = ElmoreParams::uniform_loads(2, 0, 0.5, 0.2, 10.0, 1.0, 2.0);
/// // Matches the hand computation of the two-node net.
/// assert!((elmore_spt_radius(&net, &params) - 42.8).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn elmore_spt_radius(net: &Net, params: &ElmoreParams) -> f64 {
    let spt = crate::spt_tree(net);
    let delays = ElmoreDelays::from_source(&spt, params);
    delays.max_delay_over(net.sinks())
}

/// BKRUS with Elmore-delay feasibility: constructs a spanning tree whose
/// worst source-to-sink Elmore delay is at most `(1 + eps) * R`, where `R`
/// is [`elmore_spt_radius`].
///
/// The Kruskal scan is unchanged; the feasibility conditions become:
///
/// * (3-a) if the merged tree contains the source:
///   `r[source] <= (1 + eps) * R` in the tentatively merged tree, where
///   `r[source]` is the worst driver-inclusive delay — this re-checks
///   *existing* nodes too, because added capacitance slows them down;
/// * (3-b) otherwise there must be a node `x` in the merged tree such that a
///   hypothetical direct source wire to `x` would meet the bound:
///   `r_d (c_d + c_s d(S,x) + C') + r_s d(S,x) (c_s d(S,x)/2 + C') + r[x]
///   <= (1 + eps) * R`, with `C'` the total capacitance of the merged tree.
///
/// # Errors
///
/// * [`BmstError::InvalidEpsilon`] on negative/NaN `eps`;
/// * [`BmstError::Infeasible`] when the scan ends without spanning — unlike
///   the geometric case this can genuinely happen (Lemma 3.1's monotonicity
///   argument does not carry over to the Elmore model), typically for very
///   small `eps` or weak drivers.
///
/// # Panics
///
/// Panics if `params.load_cap.len() < net.len()`.
pub fn bkrus_elmore(net: &Net, eps: f64, params: &ElmoreParams) -> Result<RoutingTree, BmstError> {
    if eps.is_nan() || eps < 0.0 {
        return Err(BmstError::InvalidEpsilon { eps });
    }
    let cx = ProblemContext::new(net, eps)?.with_elmore(params.clone());
    run(&cx)
}

/// Context-based Elmore BKRUS driver: the distance matrix and sorted edge
/// list come from the shared cache, the delay model from
/// [`ProblemContext::elmore_params`].
pub(crate) fn run(cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
    let net = cx.net();
    let eps = cx.eps();
    let params = cx.elmore_params();
    let n = net.len();
    let s = net.source();
    assert!(params.load_cap.len() >= n, "load_cap too short for net");
    if n == 1 {
        let tree = RoutingTree::from_edges(1, s, [])?;
        crate::audit::debug_audit(net, &tree, None);
        return Ok(tree);
    }

    let bound = if eps.is_infinite() {
        f64::INFINITY
    } else {
        (1.0 + eps) * elmore_spt_radius(net, params)
    };
    let d = cx.matrix();

    let mut dsu = DisjointSets::new(n);
    // Edge list per component, keyed by DSU representative.
    let mut comp_edges: Vec<Vec<Edge>> = vec![Vec::new(); n];
    let mut accepted = 0usize;

    for &e in cx.sorted_edges() {
        if accepted == n - 1 {
            break;
        }
        let (ru, rv) = (dsu.find(e.u), dsu.find(e.v));
        if ru == rv {
            continue;
        }
        // Tentative merged component.
        let mut merged: Vec<Edge> =
            Vec::with_capacity(comp_edges[ru].len() + comp_edges[rv].len() + 1);
        merged.extend_from_slice(&comp_edges[ru]);
        merged.extend_from_slice(&comp_edges[rv]);
        merged.push(e);

        let has_source = dsu.same_set(e.u, s) || dsu.same_set(e.v, s);
        let feasible = if bound.is_infinite() {
            true
        } else if has_source {
            let t = RoutingTree::from_edges(n, s, merged.iter().copied())?;
            let delays = ElmoreDelays::from_source(&t, params);
            le_tol(delays.max_delay(), bound)
        } else {
            // Root the component tree anywhere (e.u) and recompute all radii.
            let t = RoutingTree::from_edges(n, e.u, merged.iter().copied())?;
            let radii = elmore::elmore_radii(&t, params);
            let total_cap = elmore::total_capacitance(&t, params);
            let any_feasible = t.covered_nodes().any(|x| {
                let dsx = d[(s, x)];
                let direct = params.driver_res
                    * (params.driver_cap + params.unit_cap * dsx + total_cap)
                    + params.unit_res * dsx * (params.unit_cap * dsx / 2.0 + total_cap)
                    + radii[x];
                le_tol(direct, bound)
            });
            any_feasible
        };

        if feasible {
            dsu.union(e.u, e.v);
            let new_root = dsu.find(e.u);
            let (a, b) = (ru.min(rv), ru.max(rv));
            // Move both lists into the new representative slot.
            let mut list = std::mem::take(&mut comp_edges[b]);
            let mut other = std::mem::take(&mut comp_edges[a]);
            list.append(&mut other);
            list.push(e);
            comp_edges[new_root] = list;
            accepted += 1;
        }
    }

    if accepted != n - 1 {
        return Err(BmstError::Infeasible {
            connected: accepted + 1,
            total: n,
            min_feasible_eps: None,
        });
    }
    let root = dsu.find(s);
    let tree = RoutingTree::from_edges(n, s, comp_edges[root].iter().copied())?;
    // The feasibility bound here is an Elmore delay, not a geometric path
    // window, so only the structural and merge invariants are audited.
    crate::audit::debug_audit(net, &tree, None);
    Ok(tree)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::mst_tree;
    use bmst_geom::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_net(seed: u64, n: usize) -> Net {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        Net::with_source_first(pts).unwrap()
    }

    fn strong_driver(n: usize) -> ElmoreParams {
        // A strong driver so the SPT is comfortably feasible (paper's
        // requirement).
        ElmoreParams::uniform_loads(n, 0, 0.1, 0.2, 1.0, 0.5, 1.0)
    }

    #[test]
    fn delay_bound_respected() {
        // Seeds chosen so the greedy Elmore scan spans at every eps; see
        // `infeasibility_is_reported_cleanly` for the other outcome.
        for seed in [0, 1, 3, 4, 6] {
            let net = random_net(seed, 9);
            let params = strong_driver(net.len());
            let r = elmore_spt_radius(&net, &params);
            for eps in [0.2, 0.5, 1.0] {
                let t = bkrus_elmore(&net, eps, &params).unwrap();
                assert!(t.is_spanning());
                let worst = ElmoreDelays::from_source(&t, &params).max_delay_over(net.sinks());
                assert!(
                    worst <= (1.0 + eps) * r + 1e-6,
                    "seed {seed} eps {eps}: {worst} > {}",
                    (1.0 + eps) * r
                );
            }
        }
    }

    #[test]
    fn infeasibility_is_reported_cleanly() {
        // Unlike geometric BKRUS, the Elmore scan can paint itself into a
        // corner (Lemma 3.1's monotonicity does not carry over): early
        // sink-sink merges add capacitance that makes every remaining
        // source-side merge exceed the bound. The contract is a clean
        // `Infeasible` error, never a bound-violating tree.
        let net = random_net(2, 9);
        let params = strong_driver(net.len());
        match bkrus_elmore(&net, 0.2, &params) {
            Err(BmstError::Infeasible {
                connected, total, ..
            }) => {
                assert!(connected < total);
                assert_eq!(total, net.len());
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn infinite_eps_matches_mst() {
        let net = random_net(1, 10);
        let params = strong_driver(net.len());
        let t = bkrus_elmore(&net, f64::INFINITY, &params).unwrap();
        assert!((t.cost() - mst_tree(&net).cost()).abs() < 1e-9);
    }

    #[test]
    fn tighter_bound_costs_more() {
        let net = random_net(2, 10);
        let params = strong_driver(net.len());
        let tight = bkrus_elmore(&net, 0.1, &params).unwrap().cost();
        let loose = bkrus_elmore(&net, 2.0, &params).unwrap().cost();
        assert!(loose <= tight + 1e-9);
    }

    #[test]
    fn eps_zero_star_is_feasible_fallback() {
        // At eps = 0 only SPT-delay-equalling trees fit; the construction
        // either succeeds within the bound or reports infeasibility — never
        // silently violates.
        let net = random_net(3, 7);
        let params = strong_driver(net.len());
        let r = elmore_spt_radius(&net, &params);
        match bkrus_elmore(&net, 0.0, &params) {
            Ok(t) => {
                let worst = ElmoreDelays::from_source(&t, &params).max_delay_over(net.sinks());
                assert!(worst <= r + 1e-6);
            }
            Err(BmstError::Infeasible { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn spt_radius_positive_for_nontrivial_net() {
        let net = random_net(4, 5);
        let params = strong_driver(net.len());
        assert!(elmore_spt_radius(&net, &params) > 0.0);
    }

    #[test]
    fn negative_eps_rejected() {
        let net = random_net(5, 4);
        let params = strong_driver(net.len());
        assert!(matches!(
            bkrus_elmore(&net, -0.5, &params),
            Err(BmstError::InvalidEpsilon { .. })
        ));
    }

    #[test]
    fn trivial_nets() {
        let net = Net::with_source_first(vec![Point::new(0.0, 0.0)]).unwrap();
        let params = strong_driver(1);
        assert_eq!(bkrus_elmore(&net, 0.5, &params).unwrap().cost(), 0.0);

        let net = Net::with_source_first(vec![Point::new(0.0, 0.0), Point::new(3.0, 0.0)]).unwrap();
        let params = strong_driver(2);
        assert_eq!(bkrus_elmore(&net, 0.0, &params).unwrap().cost(), 3.0);
    }
}
