//! BKH2: depth-2 negative-sum-exchange local search (paper §5).
//!
//! By Lemma 3.1 the BKRUS tree is already a local optimum with respect to a
//! *single* feasible T-exchange, so improving it requires sequences of at
//! least two exchanges. BKH2 is exactly that: the negative-sum-exchange
//! search limited to depth two, repeated until no improvement remains. It
//! finds a deeper local optimum than BKRUS at `O(E^2 V^3)` cost, and the
//! paper recommends it for nets of fewer than ~300 terminals.

use bmst_geom::Net;
use bmst_tree::RoutingTree;

use bmst_tree::{ElmoreDelays, ElmoreParams};

use crate::bkex::{bkex_from, BkexConfig};
use crate::{elmore_spt_radius, BmstError, PathConstraint, ProblemContext};

/// Bounded path length spanning tree via BKRUS followed by the BKH2
/// depth-2 exchange post-processing.
///
/// # Errors
///
/// Propagates [`bkrus`]'s errors; the exchange phase itself cannot fail.
///
/// # Examples
///
/// ```
/// use bmst_core::{bkh2, bkrus};
/// use bmst_geom::{Net, Point};
///
/// let net = Net::with_source_first(vec![
///     Point::new(0.0, 0.0),
///     Point::new(5.0, 1.0),
///     Point::new(6.0, -1.0),
///     Point::new(7.0, 2.0),
/// ])?;
/// // BKH2 is never worse than plain BKRUS.
/// assert!(bkh2(&net, 0.2)?.cost() <= bkrus(&net, 0.2)?.cost() + 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn bkh2(net: &Net, eps: f64) -> Result<RoutingTree, BmstError> {
    let cx = ProblemContext::new(net, eps)?;
    run(&cx)
}

/// Context-based BKH2 driver: BKRUS start plus the depth-2 exchange search
/// over the shared distance matrix.
pub(crate) fn run(cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
    let _obs_span = bmst_obs::span("bkh2");
    crate::bkex::run(cx, BkexConfig::with_depth(2))
}

/// The BKH2 post-processing alone: repeatedly applies negative-sum
/// T-exchange sequences of depth at most two until none improves the tree.
///
/// Exposed separately so the post-processing can be applied to *any*
/// feasible starting tree (e.g. BPRIM's, or a lower/upper bounded BKRUS
/// tree — the constraint may carry a lower bound).
pub fn bkh2_from(net: &Net, constraint: PathConstraint, start: RoutingTree) -> RoutingTree {
    bkex_from(net, constraint, start, BkexConfig::with_depth(2))
}

/// BKH2 under the Elmore delay model: constructs the §3.2 Elmore-BKRUS tree
/// and post-optimises it with depth-2 negative-sum-exchanges whose
/// feasibility predicate is the worst source-sink *Elmore delay* staying
/// within `(1 + eps) * R_elmore`.
///
/// This combines the paper's two extensions (§3.2 and §5) — the exchange
/// machinery is model-agnostic once feasibility is a predicate.
///
/// # Errors
///
/// Propagates [`bkrus_elmore`]'s errors ([`BmstError::Infeasible`] when the
/// Elmore scan dead-ends, [`BmstError::InvalidEpsilon`] for bad `eps`).
///
/// # Panics
///
/// Panics if `params.load_cap.len() < net.len()`.
pub fn bkh2_elmore(net: &Net, eps: f64, params: &ElmoreParams) -> Result<RoutingTree, BmstError> {
    let cx = ProblemContext::new(net, eps)?.with_elmore(params.clone());
    run_elmore(&cx)
}

/// Context-based Elmore BKH2: the §3.2 construction and the depth-2
/// exchange both draw the matrix (and Elmore parameters) from `cx`.
pub(crate) fn run_elmore(cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
    let net = cx.net();
    let eps = cx.eps();
    let params = cx.elmore_params();
    let start = crate::elmore_bkrus::run(cx)?;
    let bound = if eps.is_infinite() {
        f64::INFINITY
    } else {
        (1.0 + eps) * elmore_spt_radius(net, params)
    };
    let sinks: Vec<usize> = net.sinks().collect();
    let feasible = move |t: &RoutingTree| -> bool {
        bound.is_infinite()
            || bmst_geom::le_tol(
                ElmoreDelays::from_source(t, params).max_delay_over(sinks.iter().copied()),
                bound,
            )
    };
    Ok(crate::bkex::exchange(
        cx,
        &feasible,
        start,
        BkexConfig::with_depth(2),
    ))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::{bkex, bkrus, gabow_bmst, BkexConfig};
    use bmst_geom::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_net(seed: u64, n: usize) -> Net {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)))
            .collect();
        Net::with_source_first(pts).unwrap()
    }

    #[test]
    fn sandwiched_between_bkrus_and_bkex() {
        for seed in 0..8 {
            let net = random_net(seed, 7);
            for eps in [0.0, 0.2, 0.5] {
                let upper = bkrus(&net, eps).unwrap().cost();
                let mid = bkh2(&net, eps).unwrap().cost();
                let lower = bkex(&net, eps, BkexConfig::default()).unwrap().cost();
                assert!(mid <= upper + 1e-9, "seed {seed} eps {eps}");
                assert!(lower <= mid + 1e-9, "seed {seed} eps {eps}");
            }
        }
    }

    #[test]
    fn feasibility_preserved() {
        for seed in 0..5 {
            let net = random_net(seed + 30, 10);
            let eps = 0.15;
            let t = bkh2(&net, eps).unwrap();
            assert!(t.is_spanning());
            assert!(t.source_radius() <= (1.0 + eps) * net.source_radius() + 1e-9);
        }
    }

    #[test]
    fn often_reaches_the_optimum_on_small_nets() {
        // The paper: depth 2 reaches 96.9% of optima. On a handful of tiny
        // nets we just require a large majority.
        let mut hits = 0;
        let total = 10;
        for seed in 0..total {
            let net = random_net(seed + 70, 6);
            let eps = 0.2;
            let h = bkh2(&net, eps).unwrap().cost();
            let o = gabow_bmst(&net, eps).unwrap().cost();
            if (h - o).abs() < 1e-9 {
                hits += 1;
            }
        }
        assert!(hits >= total * 7 / 10, "only {hits}/{total} optimal");
    }

    #[test]
    fn post_processing_applies_to_bprim_start() {
        let net = random_net(11, 8);
        let eps = 0.1;
        let start = crate::bprim(&net, eps).unwrap();
        let c = PathConstraint::from_eps(&net, eps).unwrap();
        let out = bkh2_from(&net, c, start.clone());
        assert!(out.cost() <= start.cost() + 1e-9);
        assert!(out.source_radius() <= (1.0 + eps) * net.source_radius() + 1e-9);
    }

    #[test]
    fn elmore_post_optimisation_improves_or_ties() {
        use bmst_tree::{ElmoreDelays, ElmoreParams};
        for seed in 0..4 {
            let net = random_net(seed + 150, 8);
            let params =
                ElmoreParams::uniform_loads(net.len(), net.source(), 0.2, 0.2, 10.0, 1.0, 4.0);
            let eps = 0.5;
            let Ok(start) = crate::bkrus_elmore(&net, eps, &params) else {
                continue;
            };
            let out = bkh2_elmore(&net, eps, &params).unwrap();
            assert!(out.cost() <= start.cost() + 1e-9, "seed {seed}");
            // The delay bound still holds after the exchanges.
            let bound = (1.0 + eps) * crate::elmore_spt_radius(&net, &params);
            let worst = ElmoreDelays::from_source(&out, &params).max_delay_over(net.sinks());
            assert!(worst <= bound + 1e-6, "seed {seed}: {worst} > {bound}");
        }
    }

    #[test]
    fn trivial_net() {
        let net = Net::with_source_first(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).unwrap();
        assert_eq!(bkh2(&net, 0.0).unwrap().cost(), 1.0);
    }
}
