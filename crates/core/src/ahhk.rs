//! The Prim-Dijkstra trade-off of Alpert, Hu, Huang and Kahng ("A direct
//! combination of the Prim and Dijkstra constructions for improved
//! performance-driven global routing", ISCAS 1993) — the paper's reference
//! [9], cited in §2 as an alternative way to trade source-sink path length
//! for routing cost.
//!
//! Unlike BKRUS, AHHK offers no hard path-length *bound*: it blends the
//! Prim key `dist(u, v)` with the Dijkstra key `path(S, u) + dist(u, v)` by
//! a parameter `c`, sliding the result between the MST (`c = 0`) and the
//! SPT (`c = 1`).

use bmst_geom::Net;
use bmst_graph::Edge;
use bmst_tree::RoutingTree;

use crate::{BmstError, ProblemContext};

/// Constructs a spanning tree with the AHHK Prim-Dijkstra blend: grow from
/// the source, always attaching the outside node `v` minimising
/// `c * path(S, u) + dist(u, v)` over tree nodes `u`.
///
/// * `c = 0.0` reproduces Prim's MST;
/// * `c = 1.0` reproduces Dijkstra's SPT (each sink reached at its shortest
///   distance);
/// * intermediate values trade radius for cost *without* a hard guarantee —
///   exactly the property the paper contrasts its bounded constructions
///   against.
///
/// `O(V^2)`.
///
/// # Errors
///
/// [`BmstError::InvalidEpsilon`] when `c` is NaN or outside `[0, 1]`
/// (reusing the parameter-validation error type).
///
/// # Examples
///
/// ```
/// use bmst_core::{mst_tree, prim_dijkstra, spt_tree};
/// use bmst_geom::{Net, Point};
///
/// let net = Net::with_source_first(vec![
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(5.0, 1.0),
///     Point::new(6.0, -1.0),
/// ])?;
/// let mst_like = prim_dijkstra(&net, 0.0)?;
/// let spt_like = prim_dijkstra(&net, 1.0)?;
/// assert!((mst_like.cost() - mst_tree(&net).cost()).abs() < 1e-9);
/// assert!((spt_like.source_radius() - spt_tree(&net).source_radius()).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn prim_dijkstra(net: &Net, c: f64) -> Result<RoutingTree, BmstError> {
    let cx = ProblemContext::unbounded(net).with_pd_blend(c);
    run(&cx)
}

/// Context-based AHHK driver; the blend parameter comes from
/// [`ProblemContext::pd_blend`].
// analyze: complexity(n^2)
pub(crate) fn run(cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
    let net = cx.net();
    let c = cx.pd_blend();
    if c.is_nan() || !(0.0..=1.0).contains(&c) {
        return Err(BmstError::InvalidEpsilon { eps: c });
    }
    let n = net.len();
    let s = net.source();
    if n == 1 {
        let tree = RoutingTree::from_edges(1, s, [])?;
        crate::audit::debug_audit(net, &tree, None);
        return Ok(tree);
    }
    let d = cx.matrix();

    let mut in_tree = vec![false; n];
    let mut path_s = vec![0.0; n];
    // best[v] = min over tree u of c * path_s[u] + d(u, v), with arg.
    let mut best = vec![f64::INFINITY; n];
    let mut best_from = vec![usize::MAX; n];
    in_tree[s] = true;
    for v in 0..n {
        cx.check_cancelled()?;
        if v != s {
            best[v] = d[(s, v)];
            best_from[v] = s;
        }
    }

    let mut edges = Vec::with_capacity(n - 1);
    for _ in 1..n {
        cx.check_cancelled()?;
        let mut pick = usize::MAX;
        let mut key = f64::INFINITY;
        for v in 0..n {
            if !in_tree[v] && best[v] < key {
                pick = v;
                key = best[v];
            }
        }
        debug_assert!(pick != usize::MAX);
        let u = best_from[pick];
        in_tree[pick] = true;
        path_s[pick] = path_s[u] + d[(u, pick)];
        edges.push(Edge::new(u, pick, d[(u, pick)]));
        for v in 0..n {
            if !in_tree[v] {
                let cand = c * path_s[pick] + d[(pick, v)];
                if cand < best[v] {
                    best[v] = cand;
                    best_from[v] = pick;
                }
            }
        }
    }
    let tree = RoutingTree::from_edges(n, s, edges)?;
    // AHHK has no hard path bound, so only the structural and merge
    // invariants are audited.
    crate::audit::debug_audit(net, &tree, None);
    Ok(tree)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::{mst_tree, spt_tree};
    use bmst_geom::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_net(seed: u64, n: usize) -> Net {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        Net::with_source_first(pts).unwrap()
    }

    #[test]
    fn c_zero_is_prim() {
        for seed in 0..5 {
            let net = random_net(seed, 12);
            let t = prim_dijkstra(&net, 0.0).unwrap();
            assert!((t.cost() - mst_tree(&net).cost()).abs() < 1e-9);
        }
    }

    #[test]
    fn c_one_is_dijkstra() {
        for seed in 0..5 {
            let net = random_net(seed + 10, 12);
            let t = prim_dijkstra(&net, 1.0).unwrap();
            // In a metric complete graph Dijkstra reaches every node at its
            // direct distance.
            for v in net.sinks() {
                assert!(
                    (t.dist_from_root(v) - net.dist(net.source(), v)).abs() < 1e-9,
                    "seed {seed} node {v}"
                );
            }
            assert!((t.source_radius() - spt_tree(&net).source_radius()).abs() < 1e-9);
        }
    }

    #[test]
    fn cost_between_extremes() {
        for seed in 0..5 {
            let net = random_net(seed + 20, 12);
            let mst = mst_tree(&net).cost();
            let spt = spt_tree(&net).cost();
            for c in [0.25, 0.5, 0.75] {
                let t = prim_dijkstra(&net, c).unwrap();
                assert!(t.is_spanning());
                assert!(t.cost() + 1e-9 >= mst);
                assert!(t.cost() <= spt + 1e-9);
            }
        }
    }

    #[test]
    fn no_hard_bound_unlike_bkrus() {
        // AHHK controls the radius only softly: find an instance where the
        // mid-c tree exceeds the bound a comparable BKRUS honours — the
        // contrast the paper draws in §2.
        let mut found = false;
        for seed in 0..30 {
            let net = random_net(seed + 40, 12);
            let t = prim_dijkstra(&net, 0.25).unwrap();
            if t.source_radius() > 1.2 * net.source_radius() + 1e-9 {
                found = true;
                break;
            }
        }
        assert!(found, "expected some instance where c = 0.25 exceeds 1.2 R");
    }

    #[test]
    fn invalid_c_rejected() {
        let net = random_net(0, 4);
        assert!(prim_dijkstra(&net, -0.1).is_err());
        assert!(prim_dijkstra(&net, 1.5).is_err());
        assert!(prim_dijkstra(&net, f64::NAN).is_err());
    }

    #[test]
    fn trivial_nets() {
        let net = Net::with_source_first(vec![Point::new(0.0, 0.0)]).unwrap();
        assert_eq!(prim_dijkstra(&net, 0.5).unwrap().cost(), 0.0);
    }
}
