//! Property tests for the I/O formats.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats

use bmst_geom::{Net, Point};
use bmst_io::{netfile, svg};
use proptest::prelude::*;

fn arb_net() -> impl Strategy<Value = Net> {
    proptest::collection::vec(
        (
            proptest::num::f64::NORMAL.prop_map(|x| (x % 1e6).abs()),
            proptest::num::f64::NORMAL.prop_map(|y| (y % 1e6).abs()),
        ),
        1..12,
    )
    .prop_map(|coords| {
        let pts: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
        Net::with_source_first(pts).expect("finite coordinates")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary finite nets round-trip bit-for-bit (full f64 precision).
    #[test]
    fn netfile_round_trips_exactly(net in arb_net()) {
        let text = netfile::to_string(&net);
        let back = netfile::from_str(&text).expect("own output parses");
        prop_assert_eq!(net, back);
    }

    /// The parser never panics on arbitrary printable input.
    #[test]
    fn netfile_parser_never_panics(text in "[ -~\n]{0,200}") {
        let _ = netfile::from_str(&text);
    }

    /// SVG rendering of any MST is well-formed: one line per edge, balanced
    /// document, all covered nodes marked.
    #[test]
    fn svg_is_well_formed(net in arb_net()) {
        let tree = bmst_core::mst_tree(&net);
        let doc = svg::render_tree(net.points(), &tree, &svg::SvgOptions::default());
        prop_assert!(doc.starts_with("<svg"));
        prop_assert!(doc.ends_with("</svg>\n"));
        prop_assert_eq!(doc.matches("<line").count(), net.len() - 1);
        prop_assert_eq!(doc.matches("<circle").count(), net.num_sinks());
        prop_assert_eq!(doc.matches("<rect").count(), 2); // background + source
    }
}
