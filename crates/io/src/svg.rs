//! SVG rendering of routing trees.
//!
//! Produces small, self-contained SVG documents: tree edges as lines, sinks
//! as dots, the source as a filled square, Steiner points (covered
//! non-terminal nodes) as smaller hollow dots. Y is flipped so the plane's
//! "up" is up on screen.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use bmst_geom::{BoundingBox, Point};
use bmst_tree::RoutingTree;

/// Rendering options.
#[derive(Debug, Clone, PartialEq)]
pub struct SvgOptions {
    /// Output width in pixels (height follows the aspect ratio).
    pub width: f64,
    /// Margin around the drawing, as a fraction of the larger dimension.
    pub margin: f64,
    /// Number of terminals; nodes with ids `>= terminals` are drawn as
    /// Steiner points. Use `usize::MAX` (the default) for spanning trees.
    pub terminals: usize,
    /// Label nodes with their indices.
    pub labels: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 480.0,
            margin: 0.08,
            terminals: usize::MAX,
            labels: false,
        }
    }
}

/// Renders a routing tree over the given node coordinates to an SVG string.
///
/// `points[i]` must hold the position of node `i` for every covered node.
///
/// # Panics
///
/// Panics if `points.len() < tree.universe()` or if the tree covers no node
/// (impossible for constructed trees).
///
/// # Examples
///
/// ```
/// use bmst_geom::Point;
/// use bmst_graph::Edge;
/// use bmst_io::svg;
/// use bmst_tree::RoutingTree;
///
/// let pts = [Point::new(0.0, 0.0), Point::new(10.0, 5.0)];
/// let tree = RoutingTree::from_edges(2, 0, vec![Edge::new(0, 1, 15.0)])?;
/// let doc = svg::render_tree(&pts, &tree, &svg::SvgOptions::default());
/// assert!(doc.starts_with("<svg"));
/// assert!(doc.contains("<line"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[allow(clippy::expect_used)] // coverage invariant, justified inline
pub fn render_tree(points: &[Point], tree: &RoutingTree, opts: &SvgOptions) -> String {
    assert!(
        points.len() >= tree.universe(),
        "need coordinates for all {} nodes, got {}",
        tree.universe(),
        points.len()
    );
    let covered: Vec<usize> = tree.covered_nodes().collect();
    let bb = BoundingBox::of(covered.iter().map(|&v| points[v]))
        // lint: allow(no-panic) — covered_nodes() always yields at least the root
        .expect("trees cover at least the root");

    // Map plane -> pixels. Guard degenerate (single point / collinear) boxes.
    let span_x = bb.width().max(1e-9);
    let span_y = bb.height().max(1e-9);
    let margin_px = opts.width * opts.margin;
    let draw_w = opts.width - 2.0 * margin_px;
    let scale = draw_w / span_x.max(span_y);
    let height = span_y * scale + 2.0 * margin_px;
    let px = |p: Point| -> (f64, f64) {
        (
            margin_px + (p.x - bb.lo.x) * scale,
            // Flip y so larger plane-y is higher on screen.
            height - margin_px - (p.y - bb.lo.y) * scale,
        )
    };

    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.2} {:.2}">"#,
        opts.width, height, opts.width, height
    );
    out.push('\n');
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);

    // Edges first so markers draw on top.
    for e in tree.edges() {
        let (x1, y1) = px(points[e.u]);
        let (x2, y2) = px(points[e.v]);
        let _ = writeln!(
            out,
            r##"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="#1f77b4" stroke-width="1.5"/>"##
        );
    }

    for &v in &covered {
        let (x, y) = px(points[v]);
        if v == tree.root() {
            let _ = writeln!(
                out,
                r##"<rect x="{:.2}" y="{:.2}" width="9" height="9" fill="#d62728"><title>source {v}</title></rect>"##,
                x - 4.5,
                y - 4.5
            );
        } else if v < opts.terminals {
            let _ = writeln!(
                out,
                r##"<circle cx="{x:.2}" cy="{y:.2}" r="3.5" fill="#2ca02c"><title>sink {v}</title></circle>"##
            );
        } else {
            let _ = writeln!(
                out,
                r##"<circle cx="{x:.2}" cy="{y:.2}" r="2" fill="white" stroke="#7f7f7f"><title>steiner {v}</title></circle>"##
            );
        }
        if opts.labels {
            let _ = writeln!(
                out,
                r##"<text x="{:.2}" y="{:.2}" font-size="9" fill="#333">{v}</text>"##,
                x + 5.0,
                y - 5.0
            );
        }
    }

    out.push_str("</svg>\n");
    out
}

/// Renders the tree and writes it to `path`.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_tree(
    path: impl AsRef<Path>,
    points: &[Point],
    tree: &RoutingTree,
    opts: &SvgOptions,
) -> std::io::Result<()> {
    fs::write(path, render_tree(points, tree, opts))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use bmst_graph::Edge;

    fn sample() -> (Vec<Point>, RoutingTree) {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 8.0),
        ];
        let tree = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 1, 10.0), Edge::new(1, 2, 8.0)])
            .unwrap();
        (pts, tree)
    }

    #[test]
    fn renders_all_elements() {
        let (pts, tree) = sample();
        let doc = render_tree(&pts, &tree, &SvgOptions::default());
        assert_eq!(doc.matches("<line").count(), 2);
        assert_eq!(doc.matches("<circle").count(), 2); // two sinks
        assert_eq!(doc.matches("source 0").count(), 1);
        assert!(doc.ends_with("</svg>\n"));
    }

    #[test]
    fn steiner_points_marked() {
        let (pts, tree) = sample();
        let opts = SvgOptions {
            terminals: 2,
            ..SvgOptions::default()
        };
        let doc = render_tree(&pts, &tree, &opts);
        assert!(doc.contains("steiner 2"));
        assert!(doc.contains("sink 1"));
    }

    #[test]
    fn labels_toggle() {
        let (pts, tree) = sample();
        let plain = render_tree(&pts, &tree, &SvgOptions::default());
        assert!(!plain.contains("<text"));
        let labeled = render_tree(
            &pts,
            &tree,
            &SvgOptions {
                labels: true,
                ..SvgOptions::default()
            },
        );
        assert_eq!(labeled.matches("<text").count(), 3);
    }

    #[test]
    fn single_node_tree_renders() {
        let pts = vec![Point::new(5.0, 5.0)];
        let tree = RoutingTree::from_edges(1, 0, vec![]).unwrap();
        let doc = render_tree(&pts, &tree, &SvgOptions::default());
        assert!(doc.contains("source 0"));
        assert_eq!(doc.matches("<line").count(), 0);
    }

    #[test]
    fn deterministic() {
        let (pts, tree) = sample();
        let a = render_tree(&pts, &tree, &SvgOptions::default());
        let b = render_tree(&pts, &tree, &SvgOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "need coordinates")]
    fn missing_coordinates_panic() {
        let (_, tree) = sample();
        render_tree(&[Point::new(0.0, 0.0)], &tree, &SvgOptions::default());
    }

    #[test]
    fn file_write() {
        let (pts, tree) = sample();
        let dir = std::env::temp_dir().join("bmst_svg_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.svg");
        write_tree(&path, &pts, &tree, &SvgOptions::default()).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().starts_with("<svg"));
    }

    #[test]
    fn uncovered_nodes_not_drawn() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(9.0, 9.0), // uncovered
        ];
        let tree = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 1, 4.0)]).unwrap();
        let doc = render_tree(&pts, &tree, &SvgOptions::default());
        assert!(!doc.contains("sink 2"));
        assert!(doc.contains("sink 1"));
    }
}
