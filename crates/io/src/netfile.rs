//! The plain-text net format.
//!
//! One terminal per line as `x y`, the **source first** — the same shape as
//! the sink-placement lists the paper's benchmark suites were distributed
//! as (we prepend the source instead of appending it, so line order equals
//! node index). Blank lines and `#` comments are ignored. The metric is not
//! part of the file; nets parse as Manhattan (the paper's setting) and can
//! be rebuilt under L2 by the caller if needed.
//!
//! ```text
//! # a three-terminal net
//! 0 0        <- source (node 0)
//! 10 2       <- sink (node 1)
//! 11.5 -3    <- sink (node 2)
//! ```

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use bmst_geom::{GeomError, Net, Point};

/// Errors produced when parsing a net file.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseNetError {
    /// A line did not consist of two numbers.
    BadLine {
        /// 1-based line number in the input.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A coordinate failed to parse as `f64`.
    BadNumber {
        /// 1-based line number in the input.
        line: usize,
        /// The token that failed to parse.
        token: String,
    },
    /// The parsed terminal list was rejected by [`Net::new`]
    /// (empty file, non-finite coordinate, ...).
    Geom(GeomError),
}

impl fmt::Display for ParseNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetError::BadLine { line, content } => {
                write!(f, "line {line}: expected `x y`, got {content:?}")
            }
            ParseNetError::BadNumber { line, token } => {
                write!(f, "line {line}: {token:?} is not a number")
            }
            ParseNetError::Geom(e) => write!(f, "invalid net: {e}"),
        }
    }
}

impl Error for ParseNetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseNetError::Geom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for ParseNetError {
    fn from(e: GeomError) -> Self {
        ParseNetError::Geom(e)
    }
}

/// Parses a net from the plain-text format.
///
/// # Errors
///
/// See [`ParseNetError`].
///
/// # Examples
///
/// ```
/// let net = bmst_io::netfile::from_str("0 0\n5 5\n# comment\n7 -1\n")?;
/// assert_eq!(net.len(), 3);
/// assert_eq!(net.source(), 0);
/// # Ok::<(), bmst_io::ParseNetError>(())
/// ```
pub fn from_str(text: &str) -> Result<Net, ParseNetError> {
    let mut points = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut it = content.split_whitespace();
        let (Some(xs), Some(ys), None) = (it.next(), it.next(), it.next()) else {
            return Err(ParseNetError::BadLine {
                line,
                content: content.to_owned(),
            });
        };
        let x: f64 = xs.parse().map_err(|_| ParseNetError::BadNumber {
            line,
            token: xs.to_owned(),
        })?;
        let y: f64 = ys.parse().map_err(|_| ParseNetError::BadNumber {
            line,
            token: ys.to_owned(),
        })?;
        points.push(Point::new(x, y));
    }
    Ok(Net::with_source_first(points)?)
}

/// Serialises a net to the plain-text format (source first, full `f64`
/// round-trip precision).
pub fn to_string(net: &Net) -> String {
    let mut out = String::from("# bmst net: source first, `x y` per line\n");
    // Emit in node order with the source relocated to the front so the
    // round-tripped net has source index 0 regardless of the original's.
    let s = net.source();
    let order = std::iter::once(s).chain((0..net.len()).filter(move |&i| i != s));
    for i in order {
        let p = net.point(i);
        out.push_str(&format!("{:?} {:?}\n", p.x, p.y));
    }
    out
}

/// Reads a net from a file.
///
/// # Errors
///
/// I/O failures are converted into [`ParseNetError::BadLine`] at line 0 to
/// keep the error type uniform; parse failures report their line.
pub fn read(path: impl AsRef<Path>) -> Result<Net, ParseNetError> {
    let text = fs::read_to_string(&path).map_err(|e| ParseNetError::BadLine {
        line: 0,
        content: format!("{}: {e}", path.as_ref().display()),
    })?;
    from_str(&text)
}

/// Writes a net to a file.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write(path: impl AsRef<Path>, net: &Net) -> std::io::Result<()> {
    let mut f = fs::File::create(path)?;
    f.write_all(to_string(net).as_bytes())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn parse_simple() {
        let net = from_str("0 0\n1 2\n3 4\n").unwrap();
        assert_eq!(net.len(), 3);
        assert_eq!(net.point(1), Point::new(1.0, 2.0));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let net = from_str("# header\n\n0 0   # the source\n\n 5.5   6.5 \n").unwrap();
        assert_eq!(net.len(), 2);
        assert_eq!(net.point(1), Point::new(5.5, 6.5));
    }

    #[test]
    fn bad_line_reported_with_number() {
        let err = from_str("0 0\n1 2 3\n").unwrap_err();
        assert_eq!(
            err,
            ParseNetError::BadLine {
                line: 2,
                content: "1 2 3".into()
            }
        );
        let err = from_str("0 0\nxyz\n").unwrap_err();
        assert!(matches!(err, ParseNetError::BadLine { line: 2, .. }));
    }

    #[test]
    fn bad_number_reported() {
        let err = from_str("0 zero\n").unwrap_err();
        assert_eq!(
            err,
            ParseNetError::BadNumber {
                line: 1,
                token: "zero".into()
            }
        );
    }

    #[test]
    fn empty_file_rejected() {
        assert!(matches!(
            from_str("# nothing\n"),
            Err(ParseNetError::Geom(_))
        ));
    }

    #[test]
    fn non_finite_rejected() {
        assert!(matches!(
            from_str("0 0\nNaN 3\n"),
            Err(ParseNetError::Geom(_))
        ));
    }

    #[test]
    fn round_trip_exact() {
        let net = Net::with_source_first(vec![
            Point::new(0.1, 0.2),
            Point::new(1e-10, 12345.6789),
            Point::new(-3.5, 2.25),
        ])
        .unwrap();
        assert_eq!(from_str(&to_string(&net)).unwrap(), net);
    }

    #[test]
    fn non_first_source_moves_to_front() {
        let net = bmst_geom::Net::new(
            vec![Point::new(9.0, 9.0), Point::new(0.0, 0.0)],
            1,
            bmst_geom::Metric::L1,
        )
        .unwrap();
        let round = from_str(&to_string(&net)).unwrap();
        assert_eq!(round.source(), 0);
        assert_eq!(round.point(0), Point::new(0.0, 0.0));
        assert_eq!(round.point(1), Point::new(9.0, 9.0));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("bmst_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.txt");
        let net = from_str("0 0\n4 4\n").unwrap();
        write(&path, &net).unwrap();
        assert_eq!(read(&path).unwrap(), net);
        let missing = read(dir.join("missing.txt"));
        assert!(matches!(
            missing,
            Err(ParseNetError::BadLine { line: 0, .. })
        ));
    }
}
