//! I/O for the BMST workspace.
//!
//! Facilities a routing library needs in practice:
//!
//! * a plain-text **net format** ([`netfile`]) compatible in spirit with the
//!   sink-placement lists the paper's benchmarks shipped as (one terminal
//!   per line, source first), so users can route their own placements;
//! * an **SVG renderer** ([`svg`]) for routing and Steiner trees, so a tree
//!   can actually be looked at — the fastest way to debug a bound violation
//!   or an ugly topology;
//! * a **Graphviz DOT exporter** ([`dot`]) for the tree *structure*.
//!
//! # Examples
//!
//! ```
//! use bmst_geom::{Net, Point};
//! use bmst_io::netfile;
//!
//! let net = Net::with_source_first(vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(3.5, 2.0),
//! ])?;
//! let text = netfile::to_string(&net);
//! let back = netfile::from_str(&text)?;
//! assert_eq!(net, back);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod netfile;
pub mod svg;

pub use netfile::ParseNetError;
