//! Graphviz DOT export of routing trees.
//!
//! Complements the SVG renderer: DOT captures the *structure* (useful for
//! diffing topologies and for tools that consume graphs), SVG the
//! *geometry*.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use bmst_tree::RoutingTree;

/// Renders a routing tree as a Graphviz `graph` document.
///
/// Nodes carry their id; the root is marked with a double circle; edges
/// carry their length as a label. Deterministic output (ascending child
/// order).
///
/// # Examples
///
/// ```
/// use bmst_graph::Edge;
/// use bmst_io::dot;
/// use bmst_tree::RoutingTree;
///
/// let tree = RoutingTree::from_edges(3, 0, vec![
///     Edge::new(0, 1, 2.0),
///     Edge::new(1, 2, 3.5),
/// ])?;
/// let doc = dot::render_tree(&tree);
/// assert!(doc.starts_with("graph routing_tree {"));
/// assert!(doc.contains(r#"1 -- 2 [label="3.5"]"#));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_tree(tree: &RoutingTree) -> String {
    let mut out = String::from("graph routing_tree {\n");
    let _ = writeln!(out, "  node [shape=circle fontsize=10];");
    let _ = writeln!(
        out,
        "  {} [shape=doublecircle label=\"S{}\"];",
        tree.root(),
        tree.root()
    );
    for v in tree.covered_nodes() {
        if v != tree.root() {
            let _ = writeln!(out, "  {v};");
        }
    }
    for e in tree.edges() {
        let _ = writeln!(out, "  {} -- {} [label=\"{}\"];", e.u, e.v, e.weight);
    }
    out.push_str("}\n");
    out
}

/// Renders the tree and writes it to `path`.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_tree(path: impl AsRef<Path>, tree: &RoutingTree) -> std::io::Result<()> {
    fs::write(path, render_tree(tree))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use bmst_graph::Edge;

    fn sample() -> RoutingTree {
        RoutingTree::from_edges(
            4,
            1,
            vec![
                Edge::new(1, 0, 2.0),
                Edge::new(1, 2, 1.0),
                Edge::new(2, 3, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn structure_rendered() {
        let doc = render_tree(&sample());
        assert!(doc.starts_with("graph routing_tree {"));
        assert!(doc.ends_with("}\n"));
        assert!(doc.contains("1 [shape=doublecircle label=\"S1\"];"));
        assert_eq!(doc.matches(" -- ").count(), 3);
        assert!(doc.contains("2 -- 3 [label=\"4\"];"));
    }

    #[test]
    fn deterministic() {
        assert_eq!(render_tree(&sample()), render_tree(&sample()));
    }

    #[test]
    fn single_node() {
        let tree = RoutingTree::from_edges(1, 0, vec![]).unwrap();
        let doc = render_tree(&tree);
        assert!(doc.contains("doublecircle"));
        assert_eq!(doc.matches(" -- ").count(), 0);
    }

    #[test]
    fn uncovered_nodes_absent() {
        let tree = RoutingTree::from_edges(5, 0, vec![Edge::new(0, 1, 1.0)]).unwrap();
        let doc = render_tree(&tree);
        assert!(!doc.contains("\n  4;"));
        assert!(doc.contains("\n  1;"));
    }

    #[test]
    fn file_write() {
        let dir = std::env::temp_dir().join("bmst_dot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.dot");
        write_tree(&path, &sample()).unwrap();
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .contains("routing_tree"));
    }
}
