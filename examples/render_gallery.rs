//! Renders the paper's special benchmarks and their routing trees to SVG —
//! the fastest way to *see* what the bound does to a topology.
//!
//! Run: `cargo run --release --example render_gallery`
//! Writes `gallery/*.svg` into the current directory.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_core::{bkrus, mst_tree, spt_tree};
use bmst_instances::Benchmark;
use bmst_io::svg::{self, SvgOptions};
use bmst_steiner::bkst;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::path::Path::new("gallery");
    std::fs::create_dir_all(dir)?;
    let opts = SvgOptions::default();

    for b in Benchmark::SPECIAL {
        let net = b.build();
        let pts = net.points();

        let mst = mst_tree(&net);
        svg::write_tree(dir.join(format!("{}_mst.svg", b.name())), pts, &mst, &opts)?;

        let spt = spt_tree(&net);
        svg::write_tree(dir.join(format!("{}_spt.svg", b.name())), pts, &spt, &opts)?;

        let bkt = bkrus(&net, 0.2)?;
        svg::write_tree(
            dir.join(format!("{}_bkrus_eps02.svg", b.name())),
            pts,
            &bkt,
            &opts,
        )?;

        let st = bkst(&net, 0.2)?;
        let st_opts = SvgOptions {
            terminals: st.num_terminals,
            ..SvgOptions::default()
        };
        svg::write_tree(
            dir.join(format!("{}_bkst_eps02.svg", b.name())),
            &st.points,
            &st.tree,
            &st_opts,
        )?;

        println!(
            "{:<4} MST {:7.2} | SPT {:7.2} | BKRUS@0.2 {:7.2} | BKST@0.2 {:7.2}",
            b.name(),
            mst.cost(),
            spt.cost(),
            bkt.cost(),
            st.wirelength()
        );
    }
    println!();
    println!("wrote gallery/*.svg — open them in any browser.");
    Ok(())
}
