//! Delay-driven routing with the Elmore RC model (§3.2 of the paper):
//! geometric path length is only a proxy — the Elmore-extended BKRUS bounds
//! the actual RC delay, which depends on topology and loading.
//!
//! Run: `cargo run --release --example elmore_timing`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_core::{bkrus, bkrus_elmore, elmore_spt_radius, mst_tree};
use bmst_geom::{Net, Point};
use bmst_tree::{ElmoreDelays, ElmoreParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = Net::with_source_first(vec![
        Point::new(0.0, 0.0),
        Point::new(30.0, 5.0),
        Point::new(35.0, -5.0),
        Point::new(40.0, 10.0),
        Point::new(25.0, -10.0),
        Point::new(45.0, 0.0),
        Point::new(20.0, 12.0),
    ])?;

    // A balanced RC operating point: 0.2 ohm/um + 0.2 fF/um wires, a
    // 10 ohm / 1 fF driver, 4 fF sink loads. (With much weaker drivers the
    // Kruskal scan can dead-end under the Elmore model — see the
    // `bkrus_elmore` docs.)
    let params = ElmoreParams::uniform_loads(net.len(), net.source(), 0.2, 0.2, 10.0, 1.0, 4.0);
    let r_delay = elmore_spt_radius(&net, &params);
    println!("Elmore R (worst SPT source-sink delay): {r_delay:.1}");
    println!();

    // Same slack budget, two different currencies: the geometric variant
    // spends eps on wire length, the Elmore variant spends it on the actual
    // RC delay — and buys a cheaper tree for it.
    let eps = 0.05;
    let geometric = bkrus(&net, eps)?;
    let electrical = bkrus_elmore(&net, eps, &params)?;

    let geo_delay = ElmoreDelays::from_source(&geometric, &params).max_delay_over(net.sinks());
    let ele_delay = ElmoreDelays::from_source(&electrical, &params).max_delay_over(net.sinks());
    let bound = (1.0 + eps) * r_delay;

    println!("eps = {eps}: delay bound = {bound:.1}");
    println!("                       cost     worst Elmore delay");
    println!(
        "geometric BKRUS    {:8.2} {geo_delay:>20.1}",
        geometric.cost()
    );
    println!(
        "Elmore BKRUS       {:8.2} {ele_delay:>20.1}",
        electrical.cost()
    );
    println!(
        "MST (no bound)     {:8.2} {:>20.1}",
        mst_tree(&net).cost(),
        ElmoreDelays::from_source(&mst_tree(&net), &params).max_delay_over(net.sinks())
    );
    println!();
    assert!(ele_delay <= bound + 1e-6);
    println!(
        "Both trees meet the {bound:.0} delay budget, but budgeting delay directly\n\
         saves {:.1}% wirelength over the geometric proxy: a short wire into a\n\
         heavily loaded trunk can be slower than a longer dedicated route, and\n\
         only the Elmore feasibility test sees that.",
        (1.0 - electrical.cost() / geometric.cost()) * 100.0
    );
    Ok(())
}
