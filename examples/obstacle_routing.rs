//! Obstacle-aware bounded Steiner routing (§3.3's channel-intersection-graph
//! form): macros block the die, the routing graph exposes the free channels,
//! and BKST routes within the delay bound around them.
//!
//! Run: `cargo run --release --example obstacle_routing`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_geom::{BoundingBox, Point};
use bmst_io::svg::{self, SvgOptions};
use bmst_steiner::{bkst_on_graph, RoutingGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A die with two macro blockages and a net crossing them.
    let terminals = [
        Point::new(0.0, 5.0),  // source (left edge)
        Point::new(20.0, 9.0), // sinks on the far side
        Point::new(20.0, 1.0),
        Point::new(12.0, 5.0),
        Point::new(20.0, 5.0),
    ];
    let macros = [
        BoundingBox {
            lo: Point::new(4.0, 2.0),
            hi: Point::new(9.0, 8.0),
        },
        BoundingBox {
            lo: Point::new(14.0, 3.5),
            hi: Point::new(18.0, 10.0),
        },
    ];

    let graph = RoutingGraph::with_obstacles(&terminals, &macros);
    println!(
        "routing graph: {} nodes, {} edges ({} blocked macro region[s])",
        graph.len(),
        graph.edge_count(),
        macros.len()
    );

    let source = graph.locate(terminals[0]).expect("terminal on grid");
    let sinks: Vec<usize> = terminals[1..]
        .iter()
        .map(|&p| graph.locate(p).expect("terminal on grid"))
        .collect();

    // R in obstructed routing is the worst *graph* distance, not Manhattan.
    let sp = graph.shortest_paths(source);
    let r_graph = sinks.iter().map(|&t| sp.dist[t]).fold(0.0f64, f64::max);
    let r_manhattan = terminals[1..]
        .iter()
        .map(|&p| terminals[0].manhattan(p))
        .fold(0.0f64, f64::max);
    println!("R(graph) = {r_graph}, R(manhattan) = {r_manhattan}");
    println!();

    println!(
        "{:>5} {:>12} {:>12} {:>10}",
        "eps", "wirelength", "radius", "steiner#"
    );
    for eps in [0.0, 0.2, 0.5, 1.0] {
        let st = bkst_on_graph(&graph, source, &sinks, eps)?;
        let radius = st.tree.max_dist_from_root(1..=sinks.len());
        println!(
            "{eps:>5} {:>12.2} {:>12.2} {:>10}",
            st.wirelength(),
            radius,
            st.steiner_nodes().count()
        );
        assert!(radius <= (1.0 + eps) * r_graph + 1e-9);
        if eps == 0.5 {
            let opts = SvgOptions {
                terminals: st.num_terminals,
                ..SvgOptions::default()
            };
            svg::write_tree("obstacle_route.svg", &st.points, &st.tree, &opts)?;
        }
    }
    println!();
    println!("wrote obstacle_route.svg (the eps = 0.5 tree).");
    println!("Every edge follows a free channel; no wire crosses a macro.");
    Ok(())
}
