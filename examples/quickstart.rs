//! Quickstart: build a net, construct a bounded path length spanning tree,
//! and inspect the cost/radius trade-off.
//!
//! Run: `cargo run --release --example quickstart`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_core::{bkrus, mst_tree, spt_tree};
use bmst_geom::{Net, Point};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A driver at the origin and eight sinks scattered to its right — a
    // typical signal net after placement.
    let net = Net::with_source_first(vec![
        Point::new(0.0, 0.0), // the source (driver)
        Point::new(9.0, 2.0),
        Point::new(11.0, -1.0),
        Point::new(12.0, 3.0),
        Point::new(8.0, -3.0),
        Point::new(14.0, 1.0),
        Point::new(10.0, 5.0),
        Point::new(6.0, 4.0),
        Point::new(13.0, -2.0),
    ])?;

    // R is the direct distance to the farthest sink: no tree can deliver the
    // signal there along a shorter route.
    let r = net.source_radius();
    println!("net: {} sinks, R = {r}", net.num_sinks());
    println!();

    // The two classical extremes.
    let mst = mst_tree(&net);
    let spt = spt_tree(&net);
    println!(
        "MST: cost {:6.2}, radius {:6.2}  (cheapest, slowest)",
        mst.cost(),
        mst.source_radius()
    );
    println!(
        "SPT: cost {:6.2}, radius {:6.2}  (fastest, priciest)",
        spt.cost(),
        spt.source_radius()
    );
    println!();

    // BKRUS sweeps smoothly between them: radius <= (1 + eps) * R.
    println!(
        "{:>5} {:>10} {:>10} {:>14}",
        "eps", "cost", "radius", "radius bound"
    );
    for eps in [0.0, 0.1, 0.25, 0.5, 1.0, f64::INFINITY] {
        let tree = bkrus(&net, eps)?;
        let bound = net.path_bound(eps);
        println!(
            "{:>5} {:>10.2} {:>10.2} {:>14.2}",
            if eps.is_infinite() {
                "inf".into()
            } else {
                format!("{eps}")
            },
            tree.cost(),
            tree.source_radius(),
            bound,
        );
        assert!(tree.source_radius() <= bound + 1e-9);
    }

    println!();
    println!("Pick eps by how much extra delay the timing budget tolerates; the");
    println!("tree's wirelength (and hence power) shrinks as eps grows.");
    Ok(())
}
