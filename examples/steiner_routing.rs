//! Bounded path length *Steiner* routing on the Hanan grid (§3.3 of the
//! paper): BKST introduces Steiner points so sinks can share trunks,
//! beating every spanning construction — while still honouring the radius
//! bound.
//!
//! Run: `cargo run --release --example steiner_routing`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_core::{bkh2, bkrus, mst_tree};
use bmst_geom::{Net, Point};
use bmst_steiner::bkst;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A source on the left and two columns of sinks that want to share
    // vertical trunks.
    let net = Net::with_source_first(vec![
        Point::new(0.0, 0.0),
        Point::new(8.0, 3.0),
        Point::new(8.0, -3.0),
        Point::new(8.0, 1.0),
        Point::new(12.0, 2.0),
        Point::new(12.0, -2.0),
        Point::new(12.0, 4.0),
    ])?;
    let eps = 0.3;
    let bound = net.path_bound(eps);
    println!(
        "net: {} sinks, R = {}, bound = {bound}",
        net.num_sinks(),
        net.source_radius()
    );
    println!();

    let mst = mst_tree(&net);
    let spanning = bkrus(&net, eps)?;
    let improved = bkh2(&net, eps)?;
    let steiner = bkst(&net, eps)?;

    println!("MST (unbounded)       cost {:6.2}", mst.cost());
    println!("BKRUS spanning tree   cost {:6.2}", spanning.cost());
    println!("BKH2  spanning tree   cost {:6.2}", improved.cost());
    println!("BKST  Steiner tree    cost {:6.2}", steiner.wirelength());
    println!();

    let steiner_points: Vec<_> = steiner.steiner_nodes().collect();
    println!(
        "BKST materialised {} Steiner point(s):",
        steiner_points.len()
    );
    for id in steiner_points {
        println!("   node {id} at {}", steiner.points[id]);
    }
    println!();
    println!(
        "Steiner sharing saves {:.1}% of the bounded spanning wirelength",
        (1.0 - steiner.wirelength() / spanning.cost()) * 100.0
    );
    assert!(steiner.terminal_radius() <= bound + 1e-9);
    println!(
        "and the longest source-sink path ({:.2}) still meets the bound.",
        steiner.terminal_radius()
    );
    Ok(())
}
