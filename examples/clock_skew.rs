//! Clock-skew control with the lower/upper bounded construction (§6 of the
//! paper): bound every source-to-sink path from *both* sides so that no
//! flip-flop clocks too late (upper bound) or too early — the
//! "double clocking" hazard (lower bound).
//!
//! Run: `cargo run --release --example clock_skew`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_core::{lub_bkrus, mst_tree, BmstError};
use bmst_geom::{Net, Point};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A clock source in the die centre and flip-flop groups around it.
    let net = Net::with_source_first(vec![
        Point::new(0.0, 0.0), // clock driver
        Point::new(8.0, 2.0),
        Point::new(-7.0, 3.0),
        Point::new(2.0, -9.0),
        Point::new(-4.0, -6.0),
        Point::new(5.0, 6.0),
        Point::new(-9.0, -1.0),
    ])?;
    let r = net.source_radius();
    let mst_cost = mst_tree(&net).cost();
    println!(
        "clock net: {} sinks, R = {r}, cost(MST) = {mst_cost:.1}",
        net.num_sinks()
    );
    println!();
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>10}",
        "window", "shortest", "longest", "skew", "cost/MST"
    );

    // Tighten the window step by step: skew (longest/shortest) falls,
    // wirelength rises.
    for (eps1, eps2) in [(0.0, 1.0), (0.3, 0.5), (0.5, 0.3), (0.7, 0.2), (0.8, 0.1)] {
        match lub_bkrus(&net, eps1, eps2) {
            Ok(tree) => {
                let shortest = tree.min_dist_from_root(net.sinks());
                let longest = tree.max_dist_from_root(net.sinks());
                println!(
                    "[{:.1},{:.1}] {shortest:>12.2} {longest:>12.2} {:>10.2} {:>10.2}",
                    eps1,
                    1.0 + eps2,
                    longest / shortest,
                    tree.cost() / mst_cost,
                );
                // The window really holds for every sink.
                for v in net.sinks() {
                    let p = tree.dist_from_root(v);
                    assert!(p >= eps1 * r - 1e-9 && p <= (1.0 + eps2) * r + 1e-9);
                }
            }
            Err(BmstError::Infeasible { .. }) => {
                // Spanning trees route sink-to-sink; some windows only a
                // Steiner topology could satisfy (the paper's Table 5 "-").
                println!(
                    "[{:.1},{:.1}] {:>12} {:>12} {:>10} {:>10}",
                    eps1,
                    1.0 + eps2,
                    "-",
                    "-",
                    "-",
                    "-"
                );
            }
            Err(e) => return Err(e.into()),
        }
    }

    println!();
    println!("Instead of burning area and power on delay buffers for fast paths,");
    println!("the lower bound lengthens them by wire-length control.");
    Ok(())
}
