//! A criticality-driven global routing pass: the paper's motivating use
//! case, end to end. Critical nets get tight bounds (speed), relaxed nets
//! get MSTs (power), and the report shows the resulting wirelength/slack
//! picture per class.
//!
//! Run: `cargo run --release --example global_routing`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_geom::{Net, Point};
use bmst_instances::random_net;
use bmst_router::{Criticality, NamedNet, Netlist, RouteAlgorithm, RouterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy design: one clock, two timing-critical data nets, a bundle of
    // ordinary nets, and some don't-care scan wiring.
    let mut nets = vec![NamedNet::new(
        "clk",
        Net::with_source_first(vec![
            Point::new(50.0, 50.0),
            Point::new(10.0, 10.0),
            Point::new(90.0, 12.0),
            Point::new(12.0, 88.0),
            Point::new(88.0, 90.0),
        ])?,
        Criticality::Critical,
    )];
    for i in 0..2 {
        nets.push(NamedNet::new(
            format!("cpath{i}"),
            random_net(6, 7_000 + i),
            Criticality::Critical,
        ));
    }
    for i in 0..5 {
        nets.push(NamedNet::new(
            format!("data{i}"),
            random_net(8, 8_000 + i),
            Criticality::Normal,
        ));
    }
    for i in 0..3 {
        nets.push(NamedNet::new(
            format!("scan{i}"),
            random_net(12, 9_000 + i),
            Criticality::Relaxed,
        ));
    }
    let netlist = Netlist::new(nets);

    println!(
        "routing {} nets ({} terminals total)",
        netlist.len(),
        netlist.terminal_count()
    );
    println!();

    for (label, algorithm) in [
        ("BKRUS spanning pass", RouteAlgorithm::bkrus()),
        ("BKH2 refined pass", RouteAlgorithm::bkh2()),
        ("BKST Steiner pass", RouteAlgorithm::steiner()),
    ] {
        // Serial here; `route_parallel(&config, jobs)` produces the
        // byte-identical report on worker threads.
        let report = netlist.route(&RouterConfig {
            algorithm,
            ..Default::default()
        });
        assert!(report.is_clean(), "demo nets all route at requested eps");
        println!("== {label} ==");
        println!("{report}");
        println!();
    }

    println!("Reading the reports: the Steiner pass is cheapest; critical nets");
    println!("carry small slack by design (tight eps), relaxed nets unbounded.");
    Ok(())
}
