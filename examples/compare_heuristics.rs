//! Head-to-head comparison of every construction in the workspace on one
//! net — the paper's Figure 11 ordering, live.
//!
//! Run: `cargo run --release --example compare_heuristics`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_core::{
    bkex, bkh2, bkrus, bprim, brbc, gabow_bmst, maximal_spanning_tree, mst_tree, spt_tree,
    BkexConfig,
};
use bmst_instances::random_net;
use bmst_steiner::bkst;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = random_net(12, 2024);
    let eps = 0.2;
    println!(
        "random net: {} sinks, R = {:.1}, eps = {eps} (bound {:.1})",
        net.num_sinks(),
        net.source_radius(),
        net.path_bound(eps)
    );
    println!();

    let mst = mst_tree(&net);
    let mut rows: Vec<(&str, f64, f64)> = Vec::new();
    let mut push = |name: &'static str, cost: f64, radius: f64| {
        rows.push((name, cost, radius));
    };

    push(
        "BKST (Steiner)",
        bkst(&net, eps)?.wirelength(),
        bkst(&net, eps)?.terminal_radius(),
    );
    push("MST (unbounded)", mst.cost(), mst.source_radius());
    push(
        "BMST_G (exact)",
        gabow_bmst(&net, eps)?.cost(),
        gabow_bmst(&net, eps)?.source_radius(),
    );
    let ex = bkex(&net, eps, BkexConfig::default())?;
    push("BKEX", ex.cost(), ex.source_radius());
    let h2 = bkh2(&net, eps)?;
    push("BKH2", h2.cost(), h2.source_radius());
    let bk = bkrus(&net, eps)?;
    push("BKRUS", bk.cost(), bk.source_radius());
    let pb = bprim(&net, eps)?;
    push("BPRIM", pb.cost(), pb.source_radius());
    let br = brbc(&net, eps)?;
    push("BRBC", br.cost(), br.source_radius());
    let spt = spt_tree(&net);
    push("SPT", spt.cost(), spt.source_radius());
    let maxst = maximal_spanning_tree(&net);
    push("MaxST (ceiling)", maxst.cost(), maxst.source_radius());

    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
    println!(
        "{:<18} {:>10} {:>10} {:>10}",
        "construction", "cost", "cost/MST", "radius"
    );
    for (name, cost, radius) in rows {
        println!(
            "{name:<18} {cost:>10.2} {:>10.3} {:>10.2}",
            cost / mst.cost(),
            radius
        );
    }
    println!();
    println!("Only MST, MaxST and SPT ignore the bound; everything else keeps the");
    println!("longest source-sink path within (1 + eps) * R.");
    Ok(())
}
